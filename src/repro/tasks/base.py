"""Task interface: objective, per-example gradient step, and loss.

Every analytics technique Bismarck supports (Figure 1B of the paper) is a
:class:`Task`: it knows how to build its initial model, how to turn a database
row into a training example, how to take one incremental gradient step on one
example (the body of the UDA ``transition`` function), and how to evaluate its
loss on one example (used by the loss UDA and the stopping rules).

The code-snippet comparison in Figure 4 of the paper — LR and SVM differ in a
handful of lines inside ``transition`` — is mirrored here: the task subclasses
are tiny, and everything else (ordering, parallelism, sampling, convergence)
is shared.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from ..core.model import Model
from ..core.proximal import IdentityProximal, ProximalOperator
from ..db.types import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (db.table imports types only)
    from ..db.table import Table, TableChunk

# ---------------------------------------------------------------------------
# Sparse/dense feature helpers (the Dot_Product / Scale_And_Add of Figure 4)
# ---------------------------------------------------------------------------
FeatureVector = "np.ndarray | Mapping[int, float]"


def sparse_arrays(features: Mapping[int, float]) -> tuple[np.ndarray, np.ndarray]:
    """Index/value arrays of a sparse mapping, in its iteration order.

    The array form costs more than a pure-Python loop below ~20 nonzeros but
    wins beyond it, and — more importantly — makes the per-tuple sparse ops
    the *same float operations* as the chunked CSR kernels, which is what
    keeps the two execution paths bit-for-bit identical.
    """
    count = len(features)
    indices = np.fromiter(features.keys(), dtype=np.intp, count=count)
    values = np.fromiter(features.values(), dtype=np.float64, count=count)
    return indices, values


def dot_product(weights: np.ndarray, features: Any) -> float:
    """``w . x`` for dense (ndarray) or sparse (index->value mapping) features."""
    if isinstance(features, Mapping):
        if not features:
            return 0.0
        indices, values = sparse_arrays(features)
        return float(np.dot(weights[indices], values))
    return float(np.dot(weights, features))


def scale_and_add(weights: np.ndarray, features: Any, scalar: float) -> None:
    """``w += scalar * x`` in place, for dense or sparse features."""
    if isinstance(features, Mapping):
        if not features:
            return
        indices, values = sparse_arrays(features)
        weights[indices] += scalar * values
    else:
        weights += scalar * features


def feature_dimension(features: Any) -> int:
    """Dimensionality implied by a feature vector (max index + 1 for sparse)."""
    if isinstance(features, Mapping):
        return (max(features) + 1) if features else 0
    return int(np.asarray(features).shape[0])


# ---------------------------------------------------------------------------
# Columnar example batches (the decoded form of a TableChunk)
# ---------------------------------------------------------------------------
class ExampleBatch:
    """A block of decoded training examples in columnar form.

    Dense feature vectors materialise as one ``(n, d)`` matrix ``X``; sparse
    mappings as CSR-style ``indptr`` / ``indices`` / ``data`` arrays.  Labels
    are a single ``(n,)`` vector ``y``.  The exact-IGD kernels walk rows
    through :meth:`row_dot` / :meth:`add_scaled_row` (bit-for-bit the same
    float operations as the per-tuple path, minus the Row/decoding overhead),
    while the loss/accuracy/mini-batch kernels use the fully vectorized
    :meth:`decision_values` / :meth:`add_scaled_rows`.
    """

    __slots__ = ("kind", "X", "y", "indptr", "indices", "data", "dimension", "length")

    def __init__(
        self,
        kind: str,
        *,
        y: np.ndarray,
        dimension: int,
        X: np.ndarray | None = None,
        indptr: np.ndarray | None = None,
        indices: np.ndarray | None = None,
        data: np.ndarray | None = None,
    ):
        if kind not in ("dense", "sparse"):
            raise ValueError(f"unknown batch kind {kind!r}")
        self.kind = kind
        self.X = X
        self.y = y
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.dimension = dimension
        self.length = int(y.shape[0])

    def __len__(self) -> int:
        return self.length

    # ----------------------------------------------------- vectorized kernels
    def decision_values(self, w: np.ndarray, start: int = 0, stop: int | None = None) -> np.ndarray:
        """``X[start:stop] @ w`` for dense or sparse rows."""
        stop = self.length if stop is None else stop
        if self.kind == "dense":
            return self.X[start:stop] @ w
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        result = np.zeros(stop - start)
        if hi > lo:
            products = w[self.indices[lo:hi]] * self.data[lo:hi]
            starts = np.asarray(self.indptr[start:stop] - lo, dtype=np.intp)
            counts = np.diff(self.indptr[start:stop + 1])
            # reduceat mis-handles zero-width segments (repeated or
            # out-of-range start indices), so reduce over the non-empty rows
            # only: their starts are strictly increasing and each segment runs
            # to the next non-empty start, which is exactly that row's entries.
            nonempty = counts > 0
            result[nonempty] = np.add.reduceat(products, starts[nonempty])
        return result

    def add_scaled_rows(
        self, w: np.ndarray, coefficients: np.ndarray, start: int = 0, stop: int | None = None
    ) -> None:
        """``w += sum_i coefficients[i] * x_i`` over rows ``start..stop``."""
        stop = self.length if stop is None else stop
        if self.kind == "dense":
            w += coefficients @ self.X[start:stop]
            return
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        if hi > lo:
            counts = np.diff(self.indptr[start:stop + 1])
            per_entry = np.repeat(coefficients, counts)
            np.add.at(w, self.indices[lo:hi], per_entry * self.data[lo:hi])

    # ------------------------------------------------------ exact row kernels
    def row_dot(self, w: np.ndarray, i: int) -> float:
        """``w . x_i`` with the same float ops as the per-tuple path."""
        if self.kind == "dense":
            return float(np.dot(w, self.X[i]))
        lo, hi = self.indptr[i], self.indptr[i + 1]
        if hi == lo:
            return 0.0
        return float(np.dot(w[self.indices[lo:hi]], self.data[lo:hi]))

    def add_scaled_row(self, w: np.ndarray, i: int, scalar: float) -> None:
        """``w += scalar * x_i`` with the same float ops as the per-tuple path."""
        if self.kind == "dense":
            w += scalar * self.X[i]
            return
        lo, hi = self.indptr[i], self.indptr[i + 1]
        if hi > lo:
            w[self.indices[lo:hi]] += scalar * self.data[lo:hi]

    # ------------------------------------------------------- gather kernels
    def take(self, indices: np.ndarray) -> "ExampleBatch":
        """Row gather: a new batch holding rows ``indices`` in that order.

        This is the selection/permutation kernel of the chunk plane: WHERE
        masks and logical row orders are applied as one vectorized gather
        over the cached batch instead of per-tuple ``row_at`` loops.  Dense
        rows gather with fancy indexing; sparse rows with the standard CSR
        row-gather (per-row segment copy), so the gathered rows hold exactly
        the same float values as the originals.
        """
        indices = np.asarray(indices, dtype=np.intp)
        y = self.y[indices]
        if self.kind == "dense":
            return ExampleBatch("dense", X=self.X[indices], y=y, dimension=self.dimension)
        counts = self.indptr[indices + 1] - self.indptr[indices]
        indptr = np.zeros(indices.shape[0] + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        # Element positions: each gathered row k copies the contiguous source
        # run indptr_src[indices[k]] .. + counts[k].
        starts = np.repeat(self.indptr[indices], counts)
        within = np.arange(total, dtype=np.intp) - np.repeat(indptr[:-1], counts)
        element = starts + within
        return ExampleBatch(
            "sparse",
            indptr=indptr,
            indices=self.indices[element],
            data=self.data[element],
            y=y,
            dimension=self.dimension,
        )

    @classmethod
    def concat(cls, batches: "list[ExampleBatch]") -> "ExampleBatch":
        """Concatenate batches of the same kind into one batch."""
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        y = np.concatenate([batch.y for batch in batches])
        if first.kind == "dense":
            return cls(
                "dense",
                X=np.concatenate([batch.X for batch in batches]),
                y=y,
                dimension=first.dimension,
            )
        counts = np.concatenate([np.diff(batch.indptr) for batch in batches])
        indptr = np.zeros(y.shape[0] + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            "sparse",
            indptr=indptr,
            indices=np.concatenate([batch.indices for batch in batches]),
            data=np.concatenate([batch.data for batch in batches]),
            y=y,
            dimension=first.dimension,
        )

    def astype(self, dtype) -> "ExampleBatch":
        """The same rows with the feature payload cast to ``dtype``.

        Only the dense feature arrays (``X`` for dense, ``data`` for sparse)
        are cast — labels and CSR structure arrays are *shared* with the
        source batch, and the batch is returned as-is when the features
        already have the requested dtype.  This is the float32 compute mode's
        entry point: the model stays float64, and numpy's upcasting rules
        make every kernel (``decision_values``, ``row_dot``, ...) mix float32
        features with float64 weights without further changes.
        """
        dtype = np.dtype(dtype)
        if self.kind == "dense":
            if self.X.dtype == dtype:
                return self
            return ExampleBatch("dense", X=self.X.astype(dtype), y=self.y, dimension=self.dimension)
        if self.data.dtype == dtype:
            return self
        return ExampleBatch(
            "sparse",
            indptr=self.indptr,
            indices=self.indices,
            data=self.data.astype(dtype),
            y=self.y,
            dimension=self.dimension,
        )

    def __repr__(self) -> str:
        return f"ExampleBatch(kind={self.kind!r}, rows={self.length}, dim={self.dimension})"


def make_example_batch(
    features: np.ndarray, labels: np.ndarray, dimension: int
) -> ExampleBatch | None:
    """Build an :class:`ExampleBatch` from a chunk's feature/label columns.

    ``features`` is the raw column array: a numeric array for scalar features
    (the 1-D CA-TX layout, treated as ``(n, 1)`` dense), or an object array of
    per-row ndarrays (dense) or index->value mappings (sparse).  Returns
    ``None`` when the column cannot be batched (mixed or exotic feature
    types), signalling the caller to fall back to per-tuple execution.
    """
    labels = np.asarray(labels, dtype=np.float64)
    n = labels.shape[0]
    if n == 0:
        return ExampleBatch("dense", X=np.zeros((0, dimension)), y=labels, dimension=dimension)
    if features.dtype != object:
        X = np.asarray(features, dtype=np.float64).reshape(n, 1)
        return ExampleBatch("dense", X=X, y=labels, dimension=dimension)
    first = features[0]
    if isinstance(first, np.ndarray):
        rows = list(features)
        if not all(isinstance(row, np.ndarray) and row.ndim == 1 for row in rows):
            return None
        try:
            X = np.stack(rows).astype(np.float64, copy=False)
        except ValueError:
            return None
        return ExampleBatch("dense", X=X, y=labels, dimension=dimension)
    if isinstance(first, Mapping):
        if not all(isinstance(row, Mapping) for row in features):
            return None
        counts = np.fromiter((len(row) for row in features), dtype=np.intp, count=n)
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.intp)
        data = np.empty(total, dtype=np.float64)
        for i, row in enumerate(features):
            lo, hi = indptr[i], indptr[i + 1]
            if hi > lo:
                indices[lo:hi] = np.fromiter(row.keys(), dtype=np.intp, count=hi - lo)
                data[lo:hi] = np.fromiter(row.values(), dtype=np.float64, count=hi - lo)
        return ExampleBatch(
            "sparse", indptr=indptr, indices=indices, data=data, y=labels, dimension=dimension
        )
    return None


class _CacheEntry:
    __slots__ = ("table_ref", "version", "payload", "task")

    def __init__(
        self,
        table: "Table",
        version: int,
        payload: Any,
        task: "Task",
    ):
        # A weak reference: entries must be bound to the exact Table object
        # (a dropped-and-recreated table of the same name starts its own
        # version sequence, so the name+version pair alone is not unique),
        # without keeping replaced tables' data alive.
        self.table_ref = weakref.ref(table)
        self.version = version
        self.payload = payload
        # Pin the task so its id() cannot be recycled while the entry lives.
        self.task = task

    def valid_for(self, table: "Table", version: int) -> bool:
        return self.table_ref() is table and self.version == version


class ExampleCache:
    """Per-(table-name, version, task) cache of decoded example batches.

    Row -> example decoding is the dominant per-epoch cost of the per-tuple
    path; this cache makes it happen once per *table mutation* instead of once
    per tuple per epoch.  Entries are keyed by table name + the table's
    monotonic :attr:`~repro.db.table.Table.version`, so any physical mutation
    (insert, shuffle, cluster, truncate) invalidates stale batches on the next
    lookup.  Unbatchable (table, task) pairs are negatively cached so the
    fallback decision is also O(1) per epoch.

    **Incremental extension.**  When a stale entry's version delta classifies
    as append-only in the table's ledger, the cache does not invalidate:
    it decodes only the new tail rows, re-chunks them onto the cached chunk
    list (preserving the global ``chunk_size`` alignment the gather paths
    rely on), and stores the extended payload at the new version.  The
    extension kernels (``concat`` + ``take``) preserve exact float values, so
    an extended cache is bit-for-bit identical to a cold decode at the same
    version.  Rewrites (shuffle, cluster, truncate) keep full invalidation.
    ``decoded_rows`` counts every row actually decoded, so streaming
    workloads can assert the incremental path only pays for the delta.
    """

    def __init__(self, max_entries: int = 32):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: dict[tuple, _CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        # Derived entries (selection vectors and other per-version artefacts)
        # keep their own counters so decode statistics stay meaningful: a
        # ``misses`` that stays flat across epochs means zero re-decodes even
        # when selections are being resolved alongside.
        self.derived_hits = 0
        self.derived_misses = 0
        #: Number of stale lookups served by extending the cached payload
        #: with a delta decode instead of rebuilding it from scratch.
        self.extensions = 0
        #: Total rows decoded (full rebuilds + delta extensions).  The
        #: streaming bench asserts this only grows by the delta under
        #: append-only traffic.
        self.decoded_rows = 0

    def _append_delta(self, entry: "_CacheEntry | None", table: "Table"):
        """The entry's append-only delta to the current version, or ``None``.

        ``None`` means the entry cannot be extended (no entry, different
        table object, negatively-cached payload, or a rewrite delta) and the
        caller must rebuild from scratch.
        """
        if entry is None or entry.payload is None or entry.table_ref() is not table:
            return None
        delta = table.classify_delta(entry.version)
        if not delta.is_append:
            return None
        return delta

    def batches_for(
        self, table: "Table", task: "Task", chunk_size: int, dtype: str = "float64"
    ) -> "list[ExampleBatch] | None":
        """Cached batches for ``table`` decoded by ``task``; None if unbatchable.

        ``dtype`` selects the compute dtype of the chunk plane: ``"float64"``
        (the default) returns the decode-once cached batches; any other value
        is served as a *derived cast* of the float64 entry — one decode per
        table version, one cheap vectorized cast per (version, dtype) — so
        opting into float32 never doubles decode work.
        """
        if not getattr(task, "supports_batches", False):
            return None
        if dtype != "float64":
            return self._cast_batches_for(table, task, chunk_size, dtype)
        key = (table.name, id(task), chunk_size)
        version = table.version
        entry = self._entries.get(key)
        if entry is not None and entry.valid_for(table, version):
            self.hits += 1
            self._touch(key)
            return entry.payload
        delta = self._append_delta(entry, table)
        if delta is not None:
            extended = self._extend_batches(
                entry.payload, table, task, chunk_size, delta
            )
            if extended is not None:
                self.extensions += 1
                self._store(key, entry, table, version, extended, task)
                return extended
        self.misses += 1
        batches: list[ExampleBatch] | None = []
        for chunk in table.iter_chunks(chunk_size):
            batch = task.batch_from_chunk(chunk)
            if batch is None:
                batches = None
                break
            batches.append(batch)
        if batches is not None:
            self.decoded_rows += len(table)
        self._store(key, entry, table, version, batches, task)
        return batches

    def _cast_batches_for(
        self, table: "Table", task: "Task", chunk_size: int, dtype: str
    ) -> "list[ExampleBatch] | None":
        """A cached dtype-cast view of the float64 chunk list (or ``None``).

        Keyed beside the float64 entry with the dtype appended; stale casts
        (table mutated) are simply re-cast from the — possibly incrementally
        extended — float64 batches, never re-decoded.  Batch types without a
        cast kernel (:class:`DecodedExampleBatch`) pass through uncast.
        """
        key = (table.name, id(task), chunk_size, dtype)
        version = table.version
        entry = self._entries.get(key)
        if entry is not None and entry.valid_for(table, version):
            self.hits += 1
            self._touch(key)
            return entry.payload
        base = self.batches_for(table, task, chunk_size)
        if base is None:
            cast = None
        else:
            target = np.dtype(dtype)
            cast = [
                batch.astype(target) if hasattr(batch, "astype") else batch
                for batch in base
            ]
        self._store(key, entry, table, version, cast, task)
        return cast

    def _extend_batches(
        self,
        cached: "list[ExampleBatch]",
        table: "Table",
        task: "Task",
        chunk_size: int,
        delta,
    ) -> "list[ExampleBatch] | None":
        """Extend a cached chunk list with decoded delta rows, or ``None``.

        Keeps every full cached chunk as-is, then rebuilds the tail by
        concatenating the cached partial chunk (already decoded — its float
        values are reused bit-for-bit) with the newly decoded rows and
        slicing the result back into globally ``chunk_size``-aligned blocks,
        which is the alignment contract ``gather_batches`` depends on.
        Returns ``None`` when the delta rows fail to decode or decode to an
        incompatible batch kind; the caller falls back to a full rebuild.
        """
        from ..db.table import TableChunk

        base_rows = delta.base_rows
        if sum(len(batch) for batch in cached) != base_rows:
            return None
        new_values = table.tail_values(base_rows)
        if len(new_values) != delta.rows_added:
            return None
        new_chunk = TableChunk(
            table.schema,
            new_values,
            table_name=table.name,
            table_version=table.version,
            start=base_rows,
        )
        new_batch = task.batch_from_chunk(new_chunk)
        if new_batch is None:
            return None
        full_chunks, tail_rows = divmod(base_rows, chunk_size)
        extended = list(cached[:full_chunks])
        if tail_rows:
            old_tail = cached[full_chunks]
            if getattr(old_tail, "kind", None) != getattr(new_batch, "kind", None):
                return None
            merged = type(old_tail).concat([old_tail, new_batch])
        else:
            merged = new_batch
        merged_len = len(merged)
        if merged_len <= chunk_size:
            extended.append(merged)
        else:
            for start in range(0, merged_len, chunk_size):
                stop = min(start + chunk_size, merged_len)
                extended.append(merged.take(np.arange(start, stop, dtype=np.intp)))
        self.decoded_rows += delta.rows_added
        return extended

    def examples_for(self, table: "Table", task: "Task") -> list:
        """Cached decoded examples (``task.example_from_row`` over the heap).

        Unlike :meth:`batches_for` this works for *every* task — decoding a
        row into an example is the base Task contract — so per-example
        backends (the shared-memory epoch) can serve any workload from the
        cache.  Entries share the table/version/task key scheme with the
        columnar batches and are invalidated identically; append-only deltas
        extend the cached list with the decoded tail rows only.
        """
        key = (table.name, id(task), "examples")
        version = table.version
        entry = self._entries.get(key)
        if entry is not None and entry.valid_for(table, version):
            self.hits += 1
            self._touch(key)
            return entry.payload
        delta = self._append_delta(entry, table)
        if delta is not None and len(entry.payload) == delta.base_rows:
            schema = table.schema
            new_examples = [
                task.example_from_row(Row(schema, values))
                for values in table.tail_values(delta.base_rows)
            ]
            examples = entry.payload + new_examples
            self.extensions += 1
            self.decoded_rows += delta.rows_added
            self._store(key, entry, table, version, examples, task)
            return examples
        self.misses += 1
        examples = [task.example_from_row(row) for row in table.to_rows()]
        self.decoded_rows += len(examples)
        self._store(key, entry, table, version, examples, task)
        return examples

    def derived_for(self, table: "Table", key: tuple, pin: Any, build, extend=None) -> Any:
        """Cache an arbitrary per-version artefact derived from ``table``.

        ``key`` identifies the artefact (selection vectors, gathered chunk
        lists); entries share the table/version invalidation of the decoded
        batches but keep their own hit/miss counters, so decode statistics
        stay meaningful.  ``pin`` keeps any identity-keyed objects alive for
        the entry's lifetime so their ``id()`` cannot be recycled.

        ``extend``, when given, is called as ``extend(old_payload, delta)``
        for stale entries whose ledger delta is append-only; returning a
        non-``None`` payload stores it at the new version without running
        ``build`` (returning ``None`` falls back to a full rebuild).
        """
        full_key = (table.name, "derived") + tuple(key)
        version = table.version
        entry = self._entries.get(full_key)
        if entry is not None and entry.valid_for(table, version):
            self.derived_hits += 1
            self._touch(full_key)
            return entry.payload
        if extend is not None:
            delta = self._append_delta(entry, table)
            if delta is not None:
                payload = extend(entry.payload, delta)
                if payload is not None:
                    self.extensions += 1
                    self._store(full_key, entry, table, version, payload, pin)
                    return payload
        self.derived_misses += 1
        payload = build()
        self._store(full_key, entry, table, version, payload, pin)
        return payload

    def gathered_for(
        self, table: "Table", slot_key: tuple, identity: tuple, pin: Any, build
    ) -> Any:
        """Single-slot variant of :meth:`derived_for` for gathered chunk lists.

        The cache key is the *slot* (table, decoder, chunk size) only; the
        order/selection ``identity`` is stored with the payload and checked on
        hit.  A new identity **replaces** the previous occupant instead of
        accumulating beside it, so per-epoch orders (logical shuffle-always)
        hold exactly one dataset-sized gathered copy at a time rather than
        filling the cache with dead single-use entries.
        """
        full_key = (table.name, "derived") + tuple(slot_key)
        version = table.version
        entry = self._entries.get(full_key)
        if (
            entry is not None
            and entry.valid_for(table, version)
            and entry.payload[0] == identity
        ):
            self.derived_hits += 1
            self._touch(full_key)
            return entry.payload[1]
        self.derived_misses += 1
        payload = (identity, build())
        self._store(full_key, entry, table, version, payload, pin)
        return payload[1]

    def selection_for(
        self, table: "Table", predicate: Any, functions: Mapping[str, Any] | None = None
    ) -> np.ndarray:
        """Cached boolean selection vector of ``predicate`` over ``table``.

        The predicate (an :class:`~repro.db.expressions.Expression`) is
        evaluated once per *table version* — not once per tuple per epoch —
        into a ``(len(table),)`` bool mask, which the chunk plane applies as a
        batch take/mask over cached example batches.  Predicates are assumed
        deterministic; entries share the version-keyed invalidation of the
        decoded batches.  Hashable (frozen-dataclass) predicates are keyed
        structurally so equal predicates built by different callers share one
        vector; unhashable ones fall back to identity keying.  The key also
        carries the identity of every UDF the predicate references, so
        re-registering a function under the same name invalidates the vector
        instead of serving a mask computed with the old binding.
        """
        function_map = dict(functions) if functions else {}
        bindings = tuple(
            function_map.get(name)
            for name in sorted(predicate.referenced_functions())
        )
        try:
            hash(predicate)
            predicate_key: Any = predicate
        except TypeError:
            predicate_key = id(predicate)
        key = ("selection", predicate_key, tuple(id(f) for f in bindings))

        def build() -> np.ndarray:
            return np.fromiter(
                (bool(predicate.evaluate(row, function_map)) for row in table.to_rows()),
                dtype=np.bool_,
                count=len(table),
            )

        def extend(old_mask: np.ndarray, delta) -> np.ndarray | None:
            # Append-only delta: the predicate is deterministic and rows
            # [0, base_rows) are untouched, so evaluate it on the new tail
            # rows only and concatenate onto the cached mask.
            if old_mask.shape[0] != delta.base_rows:
                return None
            schema = table.schema
            tail = np.fromiter(
                (
                    bool(predicate.evaluate(Row(schema, values), function_map))
                    for values in table.tail_values(delta.base_rows)
                ),
                dtype=np.bool_,
                count=delta.rows_added,
            )
            return np.concatenate([old_mask, tail])

        return self.derived_for(table, key, (predicate, bindings), build, extend=extend)

    def _touch(self, key: tuple) -> None:
        """Move an entry to the back of the eviction order (LRU on hit).

        Keeps hot entries — notably the decoded base batches that every
        epoch's gathers are built from — alive while per-epoch derived
        artefacts (e.g. shuffle-always gathered plans) age out first.
        """
        self._entries[key] = self._entries.pop(key)

    def _store(
        self, key: tuple, entry: "_CacheEntry | None", table: "Table",
        version: int, payload: Any, task: "Task",
    ) -> None:
        # Pop before re-assigning so refreshed entries (extensions, rebuilds
        # of a stale key) move to the back of the eviction order — true LRU
        # by last touch, not by first insertion.
        self._entries.pop(key, None)
        if entry is None and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = _CacheEntry(table, version, payload, task)

    def invalidate(self, table_name: str | None = None) -> None:
        """Drop all entries (or just those of one table)."""
        if table_name is None:
            self._entries.clear()
            return
        for key in [k for k in self._entries if k[0] == table_name]:
            del self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)


class Task:
    """Base class for analytics tasks solved by IGD."""

    #: Short machine-readable name, used by the SQL front end and registries.
    name: str = "task"

    #: Whether the task implements the chunked/batched kernels below.  Tasks
    #: that leave this False always run through the per-tuple path.
    supports_batches: bool = False

    def __init__(self, proximal: ProximalOperator | None = None):
        self.proximal: ProximalOperator = proximal or IdentityProximal()

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        """Build the initial model state (typically zeros)."""
        raise NotImplementedError

    def example_from_row(self, row: Row | Mapping[str, Any]) -> Any:
        """Convert a database row into this task's example representation."""
        raise NotImplementedError

    def gradient_step(self, model: Model, example: Any, alpha: float) -> None:
        """One incremental gradient step on ``example`` with step size ``alpha``.

        Mutates ``model`` in place; the proximal operator is applied by the
        caller (the IGD UDA), not here, so the same task works with different
        regularisers.
        """
        raise NotImplementedError

    def loss(self, model: Model, example: Any) -> float:
        """Per-example loss f(w, z_i) (without the P(w) term)."""
        raise NotImplementedError

    def predict(self, model: Model, example: Any) -> Any:
        """Optional prediction for one example."""
        raise NotImplementedError(f"{type(self).__name__} does not implement predict()")

    # --------------------------------------------------------------- helpers
    def total_loss(self, model: Model, examples: Iterable[Any]) -> float:
        """Sum of per-example losses (the data term of the objective)."""
        return float(sum(self.loss(model, example) for example in examples))

    def objective(self, model: Model, examples: Iterable[Any]) -> float:
        """Full objective: data term plus the proximal operator's penalty."""
        return self.total_loss(model, examples) + self.proximal.penalty(model)

    def batch_gradient(self, model: Model, examples: Iterable[Any]) -> Model:
        """Full (batch) gradient as a Model with the same structure.

        Default implementation accumulates the effect of per-example IGD steps
        with a unit step size, which equals the analytic gradient for tasks
        whose gradient_step is a plain ``w -= alpha * grad`` update.  Tasks
        with conditional updates (e.g. SVM's hinge) inherit this behaviour
        correctly because the subgradient is what the step applies.
        """
        gradient = model.zeros_like()
        probe = model.copy()
        for example in examples:
            snapshot = model.copy()
            self.gradient_step(snapshot, example, 1.0)
            # gradient contribution = -(w_after - w_before) for alpha = 1
            for component_name, array in gradient.items():
                array -= snapshot[component_name] - model[component_name]
        del probe
        return gradient

    # ----------------------------------------------------------- batched API
    def batch_from_chunk(self, chunk: "TableChunk") -> ExampleBatch | None:
        """Decode a columnar table chunk into an ExampleBatch (None = can't)."""
        return None

    def batch_loss(self, model: Model, batch: ExampleBatch) -> float:
        """Sum of per-example losses over a batch (one numpy reduction)."""
        raise NotImplementedError(f"{type(self).__name__} does not implement batch_loss()")

    def batch_correct(self, model: Model, batch: ExampleBatch) -> int:
        """Number of correctly classified examples in a batch."""
        raise NotImplementedError(f"{type(self).__name__} does not implement batch_correct()")

    def igd_chunk(
        self,
        model: Model,
        batch: ExampleBatch,
        alphas: np.ndarray,
        proximal: ProximalOperator,
    ) -> None:
        """Sequential IGD over a batch: bit-for-bit the per-tuple updates.

        ``alphas[i]`` is the step size of the i-th example in the batch
        (precomputed by the aggregate from the step-size schedule).
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement igd_chunk()")

    def minibatch_step(
        self, model: Model, batch: ExampleBatch, start: int, stop: int, alpha: float
    ) -> None:
        """One averaged-(sub)gradient step over batch rows ``start..stop``.

        With a single row this equals one exact IGD step; with ``B`` rows it is
        the mini-batch SGD update ``w += alpha * mean_i g_i(w)``.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement minibatch_step()")

    def describe(self) -> str:
        return self.name


class DecodedExampleBatch:
    """A chunk of task-decoded examples cached once per table version.

    The generic chunk representation for tasks whose per-example kernels are
    not expressible over flat columnar arrays (CRF sequences, Kalman time
    steps, portfolio return samples).  The chunked win for these tasks is
    decoding — row formation and parsing happen once per *table mutation*
    instead of once per tuple per epoch — plus per-chunk instead of per-tuple
    engine overhead; the float operations stay exactly the per-tuple ones.
    """

    __slots__ = ("examples",)

    def __init__(self, examples: list):
        self.examples = examples

    def __len__(self) -> int:
        return len(self.examples)

    # ------------------------------------------------------- gather kernels
    # Subclasses carrying extra per-example arrays (e.g. the CRF's
    # SequenceBatch) must override both kernels to gather those arrays too —
    # the base implementations return a plain DecodedExampleBatch.
    def take(self, indices) -> "DecodedExampleBatch":
        """Example gather: rows ``indices`` of this batch, in that order."""
        examples = self.examples
        return DecodedExampleBatch([examples[int(i)] for i in indices])

    @classmethod
    def concat(cls, batches: "list[DecodedExampleBatch]") -> "DecodedExampleBatch":
        if len(batches) == 1:
            return batches[0]
        return DecodedExampleBatch(
            [example for batch in batches for example in batch.examples]
        )

    def __repr__(self) -> str:
        return f"DecodedExampleBatch(rows={len(self.examples)})"


class PerExampleChunkTask(Task):
    """Chunked execution through cached decoded examples.

    Subclasses get the full ``supports_batches`` contract without writing
    columnar kernels: ``batch_from_chunk`` decodes the chunk's rows through
    the task's own ``example_from_row``, ``igd_chunk`` replays the task's own
    ``gradient_step`` over the cached examples (bit-for-bit the per-tuple
    updates), and ``batch_loss`` accumulates the task's ``loss`` in scan
    order.
    """

    supports_batches = True

    def batch_from_chunk(self, chunk: "TableChunk") -> DecodedExampleBatch | None:
        schema = chunk.schema
        try:
            examples = [
                self.example_from_row(Row(schema, values))
                for values in chunk.row_values()
            ]
        except Exception:
            # Any decode failure (missing columns, malformed payloads) makes
            # the (table, task) pair unbatchable; the cache records the miss
            # negatively and execution falls back to per-tuple.
            return None
        return DecodedExampleBatch(examples)

    def igd_chunk(
        self,
        model: Model,
        batch: DecodedExampleBatch,
        alphas: np.ndarray,
        proximal: ProximalOperator,
    ) -> None:
        apply_proximal = not isinstance(proximal, IdentityProximal)
        for i, example in enumerate(batch.examples):
            self.gradient_step(model, example, alphas[i])
            if apply_proximal:
                proximal.apply(model, alphas[i])

    def batch_loss(self, model: Model, batch: DecodedExampleBatch) -> float:
        total = 0.0
        for example in batch.examples:
            total += self.loss(model, example)
        return total

    def minibatch_step(
        self, model: Model, batch: DecodedExampleBatch, start: int, stop: int, alpha: float
    ) -> None:
        """Averaged-gradient step: ``w += (alpha/B) * sum_i g_i(w)``.

        Every example's gradient is evaluated at the same pre-step model (a
        frozen base copy), so this is true mini-batch SGD regardless of how
        stateful the task's ``gradient_step`` is.
        """
        base = model.copy()
        scratch = base.copy()
        scale = alpha / (stop - start)
        for i in range(start, stop):
            for name, array in scratch.items():
                np.copyto(array, base[name])
            self.gradient_step(scratch, batch.examples[i], scale)
            for name, array in model.items():
                array += scratch[name] - base[name]


class SupervisedExample:
    """A generic (features, label) example used by LR, SVM and least squares."""

    __slots__ = ("features", "label")

    def __init__(self, features: Any, label: float):
        self.features = features
        self.label = float(label)

    def __repr__(self) -> str:
        return f"SupervisedExample(label={self.label}, features={type(self.features).__name__})"


class LinearModelTask(Task):
    """Shared plumbing for tasks whose model is a single coefficient vector."""

    supports_batches = True

    def __init__(
        self,
        dimension: int,
        *,
        feature_column: str = "vec",
        label_column: str = "label",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal)
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.feature_column = feature_column
        self.label_column = label_column

    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        return Model({"w": np.zeros(self.dimension)})

    def example_from_row(self, row: Row | Mapping[str, Any]) -> SupervisedExample:
        features = row[self.feature_column]
        label = row[self.label_column]
        return SupervisedExample(features, label)

    def decision_value(self, model: Model, example: SupervisedExample) -> float:
        return dot_product(model["w"], example.features)

    # ----------------------------------------------------------- batched API
    def batch_from_chunk(self, chunk: "TableChunk") -> ExampleBatch | None:
        features = chunk.column(self.feature_column)
        labels = chunk.column(self.label_column)
        return make_example_batch(features, labels, self.dimension)

    def batch_correct(self, model: Model, batch: ExampleBatch) -> int:
        if not hasattr(self, "classify"):
            raise NotImplementedError(f"{type(self).__name__} does not classify")
        decisions = batch.decision_values(model["w"])
        predicted = self.batch_classify_decisions(decisions)
        truth = np.where(batch.y > 0, 1, -1)
        return int(np.count_nonzero(predicted == truth))

    def batch_classify_decisions(self, decisions: np.ndarray) -> np.ndarray:
        """±1 labels from decision values; must mirror ``classify`` exactly."""
        return np.where(decisions >= 0.0, 1, -1)
