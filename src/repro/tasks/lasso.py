"""Lasso: least squares with an L1 penalty, solved via the proximal IGD rule.

This exercises the proximal-point machinery of Appendix A: the data term is
ordinary squared error, the regulariser ``mu * ||w||_1`` is handled entirely by
the soft-thresholding proximal operator applied after each gradient step.
"""

from __future__ import annotations

from ..core.proximal import L1Proximal, ProximalOperator
from .least_squares import LinearRegressionTask


class LassoTask(LinearRegressionTask):
    """L1-regularised linear regression."""

    name = "lasso"

    def __init__(
        self,
        dimension: int,
        *,
        mu: float = 0.1,
        feature_column: str = "vec",
        label_column: str = "label",
        proximal: ProximalOperator | None = None,
    ):
        if mu < 0:
            raise ValueError("mu must be non-negative")
        super().__init__(
            dimension,
            feature_column=feature_column,
            label_column=label_column,
            proximal=proximal or L1Proximal(mu),
        )
        self.mu = mu
