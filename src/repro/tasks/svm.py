"""Linear support vector machine task (the "SVM" of the paper).

Objective: ``sum_i (1 - y_i * w . x_i)_+ + mu * ||w||_1`` with labels in
``{-1, +1}``.  The incremental (sub)gradient step is the second C snippet from
Figure 4:

.. code-block:: c

    wx = Dot_Product(w, e.x);
    c  = stepsize * e.y;
    if (1 - wx * e.y > 0) { Scale_And_Add(w, e.x, c); }
"""

from __future__ import annotations

from ..core.model import Model
from ..core.proximal import L1Proximal, ProximalOperator
from .base import LinearModelTask, SupervisedExample, dot_product, scale_and_add


class SVMTask(LinearModelTask):
    """Linear SVM trained with the incremental hinge-loss subgradient."""

    name = "svm"

    def __init__(
        self,
        dimension: int,
        *,
        mu: float = 0.0,
        feature_column: str = "vec",
        label_column: str = "label",
        proximal: ProximalOperator | None = None,
    ):
        if proximal is None and mu > 0:
            proximal = L1Proximal(mu)
        super().__init__(
            dimension,
            feature_column=feature_column,
            label_column=label_column,
            proximal=proximal,
        )
        self.mu = mu

    def gradient_step(self, model: Model, example: SupervisedExample, alpha: float) -> None:
        w = model["w"]
        wx = dot_product(w, example.features)
        if 1.0 - wx * example.label > 0.0:
            scale_and_add(w, example.features, alpha * example.label)

    def loss(self, model: Model, example: SupervisedExample) -> float:
        wx = dot_product(model["w"], example.features)
        return max(0.0, 1.0 - example.label * wx)

    def predict(self, model: Model, example: SupervisedExample) -> float:
        """Signed decision value ``w . x``."""
        return dot_product(model["w"], example.features)

    def classify(self, model: Model, example: SupervisedExample) -> int:
        return 1 if self.predict(model, example) >= 0.0 else -1
