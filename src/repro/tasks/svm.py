"""Linear support vector machine task (the "SVM" of the paper).

Objective: ``sum_i (1 - y_i * w . x_i)_+ + mu * ||w||_1`` with labels in
``{-1, +1}``.  The incremental (sub)gradient step is the second C snippet from
Figure 4:

.. code-block:: c

    wx = Dot_Product(w, e.x);
    c  = stepsize * e.y;
    if (1 - wx * e.y > 0) { Scale_And_Add(w, e.x, c); }
"""

from __future__ import annotations

import numpy as np

from ..core.model import Model
from ..core.proximal import IdentityProximal, L1Proximal, ProximalOperator
from .base import ExampleBatch, LinearModelTask, SupervisedExample, dot_product, scale_and_add


class SVMTask(LinearModelTask):
    """Linear SVM trained with the incremental hinge-loss subgradient."""

    name = "svm"

    def __init__(
        self,
        dimension: int,
        *,
        mu: float = 0.0,
        feature_column: str = "vec",
        label_column: str = "label",
        proximal: ProximalOperator | None = None,
    ):
        if proximal is None and mu > 0:
            proximal = L1Proximal(mu)
        super().__init__(
            dimension,
            feature_column=feature_column,
            label_column=label_column,
            proximal=proximal,
        )
        self.mu = mu

    def gradient_step(self, model: Model, example: SupervisedExample, alpha: float) -> None:
        w = model["w"]
        wx = dot_product(w, example.features)
        if 1.0 - wx * example.label > 0.0:
            scale_and_add(w, example.features, alpha * example.label)

    def loss(self, model: Model, example: SupervisedExample) -> float:
        wx = dot_product(model["w"], example.features)
        return max(0.0, 1.0 - example.label * wx)

    def predict(self, model: Model, example: SupervisedExample) -> float:
        """Signed decision value ``w . x``."""
        return dot_product(model["w"], example.features)

    def classify(self, model: Model, example: SupervisedExample) -> int:
        return 1 if self.predict(model, example) >= 0.0 else -1

    # ----------------------------------------------------------- batched API
    def batch_loss(self, model: Model, batch: ExampleBatch) -> float:
        decisions = batch.decision_values(model["w"])
        return float(np.sum(np.maximum(0.0, 1.0 - batch.y * decisions)))

    def igd_chunk(
        self, model: Model, batch: ExampleBatch, alphas: np.ndarray, proximal: ProximalOperator
    ) -> None:
        w = model["w"]
        y = batch.y
        apply_proximal = not isinstance(proximal, IdentityProximal)
        for i in range(batch.length):
            wx = batch.row_dot(w, i)
            label = y[i]
            if 1.0 - wx * label > 0.0:
                batch.add_scaled_row(w, i, alphas[i] * label)
            if apply_proximal:
                proximal.apply(model, alphas[i])

    def minibatch_step(
        self, model: Model, batch: ExampleBatch, start: int, stop: int, alpha: float
    ) -> None:
        w = model["w"]
        y = batch.y[start:stop]
        decisions = batch.decision_values(w, start, stop)
        subgradients = np.where(1.0 - decisions * y > 0.0, y, 0.0)
        batch.add_scaled_rows(w, (alpha / (stop - start)) * subgradients, start, stop)
