"""Mean–variance portfolio optimisation with a simplex constraint.

Figure 1B: ``min  p^T w + w^T Sigma w   s.t.  w in Delta`` where ``Delta`` is
the probability simplex (allocations are non-negative and sum to one).  We
treat ``p`` as the (negated) expected-return vector and estimate the risk term
``w^T Sigma w`` stochastically from observed return samples: for a sample
``r_i`` with known mean ``mu_r``,

    f_i(w) = (1/N) * p . w + risk_aversion * ((r_i - mu_r) . w)^2

has expectation equal to the full objective (up to the constant factor on the
linear term), so IGD over return-sample tuples minimises it.  The simplex
constraint is enforced by the :class:`~repro.core.proximal.SimplexProjection`
proximal operator after every step — the proximal-point rule of Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.model import Model
from ..core.proximal import ProximalOperator, SimplexProjection
from ..db.types import Row
from .base import DecodedExampleBatch, PerExampleChunkTask


@dataclass(frozen=True)
class ReturnSample:
    """One observed vector of per-asset returns."""

    returns: np.ndarray


class PortfolioOptimizationTask(PerExampleChunkTask):
    """Markowitz-style portfolio selection solved with projected IGD.

    Chunked execution comes from :class:`~repro.tasks.base.PerExampleChunkTask`
    (cached decoded return samples, exact per-example projected steps); only
    the loss reduction is overridden with a vectorized kernel.
    """

    name = "portfolio"

    def __init__(
        self,
        num_assets: int,
        expected_returns: np.ndarray,
        *,
        num_samples: int,
        risk_aversion: float = 1.0,
        returns_column: str = "returns",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal or SimplexProjection())
        if num_assets <= 1:
            raise ValueError("need at least two assets")
        if risk_aversion < 0:
            raise ValueError("risk aversion must be non-negative")
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        expected_returns = np.asarray(expected_returns, dtype=np.float64)
        if expected_returns.shape != (num_assets,):
            raise ValueError("expected_returns must have shape (num_assets,)")
        self.num_assets = num_assets
        self.expected_returns = expected_returns
        #: The paper's linear cost vector p; we use the negated expected return
        #: so minimising p.w maximises expected return.
        self.linear_cost = -expected_returns
        self.risk_aversion = risk_aversion
        self.num_samples = num_samples
        self.returns_column = returns_column

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        """Start from the uniform portfolio (already inside the simplex)."""
        return Model({"w": np.full(self.num_assets, 1.0 / self.num_assets)})

    def example_from_row(self, row: Row | Mapping[str, Any]) -> ReturnSample:
        return ReturnSample(returns=np.asarray(row[self.returns_column], dtype=np.float64))

    def gradient_step(self, model: Model, example: ReturnSample, alpha: float) -> None:
        w = model["w"]
        centered = example.returns - self.expected_returns
        exposure = float(np.dot(centered, w))
        gradient = self.linear_cost / self.num_samples + (
            2.0 * self.risk_aversion * exposure * centered
        )
        w -= alpha * gradient

    def loss(self, model: Model, example: ReturnSample) -> float:
        w = model["w"]
        centered = example.returns - self.expected_returns
        exposure = float(np.dot(centered, w))
        return float(np.dot(self.linear_cost, w)) / self.num_samples + (
            self.risk_aversion * exposure * exposure
        )

    def predict(self, model: Model, example: ReturnSample) -> float:
        """Realised portfolio return for the sample."""
        return float(np.dot(example.returns, model["w"]))

    def batch_loss(self, model: Model, batch: DecodedExampleBatch) -> float:
        """Vectorized sum of per-sample losses over one cached chunk."""
        w = model["w"]
        returns = np.stack([example.returns for example in batch.examples])
        exposures = (returns - self.expected_returns) @ w
        linear_term = float(np.dot(self.linear_cost, w)) / self.num_samples
        return float(
            np.sum(linear_term + self.risk_aversion * exposures * exposures)
        )

    # ---------------------------------------------------------------- helpers
    def analytic_objective(self, model: Model, covariance: np.ndarray) -> float:
        """Exact ``p.w + risk_aversion * w^T Sigma w`` for a known covariance."""
        w = model["w"]
        return float(np.dot(self.linear_cost, w)) + self.risk_aversion * float(
            w @ covariance @ w
        )

    def is_feasible(self, model: Model, *, atol: float = 1e-8) -> bool:
        """Whether the allocation lies in the simplex."""
        w = model["w"]
        return bool(np.all(w >= -atol) and abs(float(w.sum()) - 1.0) <= 1e-6)
