"""Bismarck reproduction: a unified architecture for in-RDBMS analytics.

This package reproduces Feng, Kumar, Recht & Ré, "Towards a Unified
Architecture for in-RDBMS Analytics" (SIGMOD 2012):

* :mod:`repro.db`          — an in-memory RDBMS substrate with user-defined
  aggregates, shared memory, and a segmented parallel engine;
* :mod:`repro.core`        — incremental gradient descent as a UDA, data
  ordering policies, parallelisation schemes, reservoir/MRS sampling;
* :mod:`repro.tasks`       — the analytics tasks of Figure 1B (LR, SVM, LMF,
  CRF, Kalman, portfolio, least squares, lasso);
* :mod:`repro.frontend`    — the MADlib-style SQL interface
  (``SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label')``);
* :mod:`repro.baselines`   — "native tool" comparators (IRLS LR, batch SVM,
  ALS matrix factorisation, batch CRF);
* :mod:`repro.data`        — synthetic dataset generators shaped like the
  paper's benchmarks;
* :mod:`repro.experiments` — the harness regenerating every table and figure
  of the evaluation section.
"""

from . import baselines, core, data, db, frontend, tasks
from .core import (
    BismarckRunner,
    IGDConfig,
    IGDResult,
    Model,
    PureUDAParallelism,
    SharedMemoryParallelism,
    train,
    train_in_memory,
)
from .db import Database, SegmentedDatabase, connect
from .frontend import install_frontend

__version__ = "1.0.0"

__all__ = [
    "BismarckRunner",
    "Database",
    "IGDConfig",
    "IGDResult",
    "Model",
    "PureUDAParallelism",
    "SegmentedDatabase",
    "SharedMemoryParallelism",
    "__version__",
    "baselines",
    "connect",
    "core",
    "data",
    "db",
    "frontend",
    "install_frontend",
    "tasks",
    "train",
    "train_in_memory",
]
