"""Reservoir sampling, subsampling and multiplexed reservoir sampling (MRS).

Section 3.4 of the paper: when the data is too large to shuffle even once, a
classical fallback is to *subsample* it with a reservoir sample and train only
on the buffer — but the reservoir throws away useful data, so convergence is
slow.  Bismarck's multiplexed reservoir sampling (MRS) runs two workers
against a shared model:

* the **I/O worker** streams the table, offers every tuple to the reservoir,
  and takes a gradient step on every tuple the reservoir *drops*;
* the **memory worker** loops over the previously filled buffer, taking
  gradient steps on the buffered (without-replacement) sample.

After each full pass of the I/O worker the two buffers are swapped.  The
reproduction simulates the two workers with a deterministic interleaving: for
every tuple the I/O worker consumes, the memory worker performs
``memory_steps_per_io`` gradient steps from its buffer.

Chunk-plane integration: the reservoirs hold row *indices* into a stable
table version, not materialized example objects.  Examples are resolved
through the shared :class:`~repro.tasks.base.ExampleCache` when one is
passed (decode once per table version, shared with every other backend), and
subsampling's buffer epochs run the task's chunked IGD kernel over batches
gathered from the cached chunk plane — the same ``take``/``concat`` gather
kernels the logical shuffles use — instead of a per-example Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from ..db.chunk_plan import gather_batches
from ..db.table import DEFAULT_CHUNK_SIZE, Table
from ..db.types import Row
from ..tasks.base import ExampleCache, Task
from .convergence import EpochRecord
from .model import Model
from .proximal import IdentityProximal, ProximalOperator
from .stepsize import StepSizeSchedule, make_schedule


class ReservoirSampler:
    """Classic reservoir sampling (Vitter): a without-replacement sample of
    fixed capacity built in one pass, with no shuffle of the underlying data.

    :meth:`offer` returns the item that was *dropped* by this offer: during
    the fill phase nothing is dropped (returns None); afterwards either the
    evicted buffer item or the offered item itself is returned.  The dropped
    item is exactly what MRS's I/O worker takes a gradient step on.
    """

    def __init__(self, capacity: int, rng: np.random.Generator | None = None):
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.rng = rng or np.random.default_rng()
        self.buffer: list[Any] = []
        self.items_seen = 0

    def offer(self, item: Any) -> Any | None:
        """Offer one item; returns the dropped item (or None while filling)."""
        self.items_seen += 1
        if len(self.buffer) < self.capacity:
            self.buffer.append(item)
            return None
        slot = int(self.rng.integers(0, self.items_seen))
        if slot < self.capacity:
            dropped = self.buffer[slot]
            self.buffer[slot] = item
            return dropped
        return item

    def __len__(self) -> int:
        return len(self.buffer)

    @property
    def is_full(self) -> bool:
        return len(self.buffer) >= self.capacity

    def sample(self) -> list[Any]:
        """The current without-replacement sample."""
        return list(self.buffer)


@dataclass
class SamplingRunResult:
    """Result of a subsampling or MRS training run."""

    model: Model
    history: list[EpochRecord] = field(default_factory=list)
    buffer_size: int = 0
    scheme: str = ""

    @property
    def final_objective(self) -> float:
        return self.history[-1].objective if self.history else float("inf")

    def objective_trace(self) -> list[float]:
        return [record.objective for record in self.history]

    def epochs_to_reach(self, target: float) -> int | None:
        """First epoch (1-based) whose objective is at or below ``target``."""
        for record in self.history:
            if record.objective <= target:
                return record.epoch + 1
        return None


def _materialize(
    examples: Sequence[Any] | Table | Iterable[Any],
    task: Task,
    cache: ExampleCache | None = None,
) -> "tuple[list[Any], Table | None]":
    """Decoded examples plus the source table (when there is one).

    With a ``cache``, a Table input decodes once per *table version* through
    the shared example cache (the chunk plane's decode-once contract) —
    repeated sampling runs over the same table, e.g. the Figure 10B buffer
    sweep, stop re-decoding the corpus per run.  Reservoirs index into this
    stable decoded list.
    """
    if isinstance(examples, Table):
        if cache is not None:
            examples.scan_count += 1
            return cache.examples_for(examples, task), examples
        return [task.example_from_row(row) for row in examples.scan()], examples
    out = []
    for item in examples:
        out.append(task.example_from_row(item) if isinstance(item, Row) else item)
    return out, None


def _gathered_buffer_batches(
    table: Table | None,
    cache: ExampleCache | None,
    task: Task,
    buffer_indices: Sequence[int],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list | None:
    """Buffer rows gathered from the cached chunk plane; ``None`` = no fast path.

    The gather runs once per training run (the buffer is fixed after the
    sampling pass) and every buffer epoch then consumes the same gathered
    batches through the task's chunked kernels — bit-for-bit the per-example
    loop, minus the per-example Python dispatch.
    """
    if table is None or cache is None or not getattr(task, "supports_batches", False):
        return None
    batches = cache.batches_for(table, task, chunk_size)
    if batches is None:
        return None
    ordinals = np.asarray(list(buffer_indices), dtype=np.intp)
    if ordinals.size == 0:
        return None
    return gather_batches(batches, ordinals, chunk_size)


def run_subsampling(
    examples: Sequence[Any] | Table,
    task: Task,
    *,
    buffer_size: int,
    step_size: StepSizeSchedule | float | dict = 0.1,
    epochs: int = 20,
    proximal: ProximalOperator | None = None,
    seed: int | None = 0,
    objective_examples: Sequence[Any] | None = None,
    cache: ExampleCache | None = None,
) -> SamplingRunResult:
    """Baseline: reservoir-sample a buffer in one pass, then train on it only.

    The per-epoch objective is evaluated on the *full* dataset (or
    ``objective_examples`` if provided), which is what makes subsampling's
    slow convergence visible.

    The reservoir holds row *indices* into the stable decoded example list.
    When the data comes from a Table resolved through a shared ``cache``,
    buffer epochs run the task's chunked IGD kernel over batches gathered
    from the cached chunk plane (bit-for-bit the per-example loop); without
    a fast path they fall back to indexing the decoded list per example.

    Capacity edge: ``buffer_size >= len(examples)`` keeps every tuple (the
    reservoir never overflows, preserving insertion order), so the run
    degenerates to plain IGD over the stored order — identical to
    :func:`run_clustered_no_shuffle`.  This is what makes the Figure 10(B)
    sweep well-defined at buffer fraction 1.0.
    """
    import time

    rng = np.random.default_rng(seed)
    schedule = make_schedule(step_size)
    proximal = proximal if proximal is not None else task.proximal or IdentityProximal()
    data, table = _materialize(examples, task, cache)
    evaluation = list(objective_examples) if objective_examples is not None else data

    sampler = ReservoirSampler(min(buffer_size, len(data)), rng)
    for index in range(len(data)):
        sampler.offer(index)
    buffer = sampler.sample()
    buffer_batches = _gathered_buffer_batches(table, cache, task, buffer)

    model = task.initial_model(rng)
    history: list[EpochRecord] = []
    steps = 0
    for epoch in range(epochs):
        start = time.perf_counter()
        if buffer_batches is not None:
            # Chunk-plane buffer epoch: the same float operations as the
            # per-example loop, run through the task's sequential IGD kernel
            # over batches gathered once from the cached decoded chunks.
            for batch in buffer_batches:
                alphas = schedule.step_sizes(steps, len(batch), epoch)
                task.igd_chunk(model, batch, alphas, proximal)
                steps += len(batch)
        else:
            for index in buffer:
                alpha = schedule.step_size(steps, epoch)
                task.gradient_step(model, data[index], alpha)
                proximal.apply(model, alpha)
                steps += 1
        objective = task.total_loss(model, evaluation) + proximal.penalty(model)
        history.append(
            EpochRecord(
                epoch=epoch,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=steps,
                model_norm=model.norm(),
            )
        )
    return SamplingRunResult(
        model=model, history=history, buffer_size=len(buffer), scheme="subsampling"
    )


def run_multiplexed_reservoir_sampling(
    examples: Sequence[Any] | Table,
    task: Task,
    *,
    buffer_size: int,
    step_size: StepSizeSchedule | float | dict = 0.1,
    epochs: int = 20,
    memory_steps_per_io: int = 1,
    proximal: ProximalOperator | None = None,
    seed: int | None = 0,
    objective_examples: Sequence[Any] | None = None,
    cache: ExampleCache | None = None,
) -> SamplingRunResult:
    """Multiplexed reservoir sampling (Figure 6): I/O and memory workers share a model.

    One "epoch" is one full pass of the I/O worker over the dataset (matching
    how the paper reports Figure 10).  ``memory_steps_per_io`` controls how many
    buffered gradient steps the memory worker interleaves per streamed tuple —
    the analogue of the relative speeds of the two workers.

    Capacity edge: the reservoir is deliberately capped at ``len(examples) - 1``
    even when ``buffer_size >= len(examples)``.  A reservoir that swallows the
    whole stream would never drop a tuple, so the I/O worker — which trains
    exclusively on dropped tuples — would take zero gradient steps and the
    first epoch would do no work at all.  Capping at ``n - 1`` guarantees at
    least one drop per pass, keeping the Figure 10(B) sweep well-defined at
    buffer fraction 1.0 (where subsampling degenerates to full-data IGD; see
    :func:`run_subsampling`).  ``SamplingRunResult.buffer_size`` reports the
    effective (capped) capacity.

    The reservoir and the memory buffer hold row *indices* into the stable
    decoded example list (resolved through the shared ``cache`` for Table
    inputs), so swapping buffers moves integers, never example payloads, and
    both workers read the same cache-decoded examples every other backend
    serves.  The two workers stay interleaved per tuple — that interleaving
    *is* the MRS schedule — but the interleaving only decides *which* index
    steps *when*: sampling never reads the model, so the epoch's step
    sequence is fully determined before any gradient runs.  Table inputs
    resolved through a shared ``cache`` therefore collect the interleaved
    step indices first and replay them through the task's chunked IGD kernel
    over batches gathered from the cached chunk plane (``take``/``concat``,
    one chunk in flight at a time) — bit-for-bit the per-example loop, which
    remains the fallback for list inputs or batch-less tasks.
    """
    import time

    rng = np.random.default_rng(seed)
    schedule = make_schedule(step_size)
    proximal = proximal if proximal is not None else task.proximal or IdentityProximal()
    data, table = _materialize(examples, task, cache)
    evaluation = list(objective_examples) if objective_examples is not None else data

    # Chunk-plane fast path: cached decoded batches with gather kernels.  The
    # reservoir interleaving below still runs per index (identical RNG draws,
    # identical step order); only the gradient arithmetic moves into
    # vectorized per-chunk kernels.
    batches: list | None = None
    if table is not None and cache is not None and getattr(task, "supports_batches", False):
        batches = cache.batches_for(table, task, DEFAULT_CHUNK_SIZE)
        if batches is not None and (
            not batches
            or not hasattr(batches[0], "take")
            or not hasattr(type(batches[0]), "concat")
        ):
            batches = None

    capacity = min(buffer_size, max(1, len(data) - 1))
    model = task.initial_model(rng)
    history: list[EpochRecord] = []
    steps = 0
    #: Buffer B — what the memory worker iterates over; starts empty so the
    #: memory worker only kicks in after the first pass fills buffer A.
    memory_buffer: list[int] = []
    memory_cursor = 0

    for epoch in range(epochs):
        start = time.perf_counter()
        sampler = ReservoirSampler(capacity, rng)  # buffer A for this pass
        if batches is not None:
            # Collect the interleaved MRS step sequence (dropped-tuple steps
            # and memory-worker steps, in schedule order), then replay it
            # through the chunked kernel — one gathered chunk in flight at a
            # time, so memory stays bounded by the chunk size.
            step_indices: list[int] = []
            for index in range(len(data)):
                dropped = sampler.offer(index)
                if dropped is not None:
                    step_indices.append(dropped)
                for _ in range(memory_steps_per_io):
                    if not memory_buffer:
                        break
                    step_indices.append(memory_buffer[memory_cursor % len(memory_buffer)])
                    memory_cursor += 1
            ordinals = np.asarray(step_indices, dtype=np.intp)
            for start in range(0, ordinals.shape[0], DEFAULT_CHUNK_SIZE):
                block = ordinals[start:start + DEFAULT_CHUNK_SIZE]
                for batch in gather_batches(batches, block, DEFAULT_CHUNK_SIZE):
                    alphas = schedule.step_sizes(steps, len(batch), epoch)
                    task.igd_chunk(model, batch, alphas, proximal)
                    steps += len(batch)
        else:
            for index in range(len(data)):
                # --- I/O worker: reservoir + gradient step on the dropped tuple.
                dropped = sampler.offer(index)
                if dropped is not None:
                    alpha = schedule.step_size(steps, epoch)
                    task.gradient_step(model, data[dropped], alpha)
                    proximal.apply(model, alpha)
                    steps += 1
                # --- Memory worker: loop over buffer B concurrently.
                for _ in range(memory_steps_per_io):
                    if not memory_buffer:
                        break
                    buffered = memory_buffer[memory_cursor % len(memory_buffer)]
                    memory_cursor += 1
                    alpha = schedule.step_size(steps, epoch)
                    task.gradient_step(model, data[buffered], alpha)
                    proximal.apply(model, alpha)
                    steps += 1
        # Swap buffers: the freshly filled reservoir becomes the memory worker's.
        memory_buffer = sampler.sample()
        memory_cursor = 0

        objective = task.total_loss(model, evaluation) + proximal.penalty(model)
        history.append(
            EpochRecord(
                epoch=epoch,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=steps,
                model_norm=model.norm(),
            )
        )
    return SamplingRunResult(
        model=model, history=history, buffer_size=capacity, scheme="mrs"
    )


def run_clustered_no_shuffle(
    examples: Sequence[Any] | Table,
    task: Task,
    *,
    step_size: StepSizeSchedule | float | dict = 0.1,
    epochs: int = 20,
    proximal: ProximalOperator | None = None,
    seed: int | None = 0,
    objective_examples: Sequence[Any] | None = None,
    cache: ExampleCache | None = None,
) -> SamplingRunResult:
    """Reference scheme for Figure 10: plain IGD over the clustered order.

    No shuffling, no sampling — every epoch walks the data exactly as stored.
    """
    import time

    rng = np.random.default_rng(seed)
    schedule = make_schedule(step_size)
    proximal = proximal if proximal is not None else task.proximal or IdentityProximal()
    data, _table = _materialize(examples, task, cache)
    evaluation = list(objective_examples) if objective_examples is not None else data

    model = task.initial_model(rng)
    history: list[EpochRecord] = []
    steps = 0
    for epoch in range(epochs):
        start = time.perf_counter()
        for example in data:
            alpha = schedule.step_size(steps, epoch)
            task.gradient_step(model, example, alpha)
            proximal.apply(model, alpha)
            steps += 1
        objective = task.total_loss(model, evaluation) + proximal.penalty(model)
        history.append(
            EpochRecord(
                epoch=epoch,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=steps,
                model_norm=model.norm(),
            )
        )
    return SamplingRunResult(model=model, history=history, buffer_size=0, scheme="clustered")
