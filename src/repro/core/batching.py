"""Epoch-adaptive mini-batch schedules.

The batch-GD baselines take one step per full pass; exact IGD takes one step
per tuple.  Between the two sits a classical schedule: start with small
mini-batches (fast early progress, like IGD) and grow them geometrically as
the iterate approaches the optimum (variance reduction, like batch GD).  A
:class:`BatchSchedule` maps an epoch index to the mini-batch size the IGD
aggregate uses for that epoch; ``IGDConfig.batch_size`` accepts one anywhere
it accepts an int.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Ceiling for uncapped geometric growth: one mini-batch is never larger than
#: a table anyway, so saturating here only guards the arithmetic.
_SATURATED_BATCH = 2 ** 31


@dataclass(frozen=True)
class BatchSchedule:
    """Mini-batch size per epoch: ``B_e = min(cap, round(initial * growth**e))``.

    ``growth == 1.0`` is the constant schedule (every epoch uses ``initial``,
    exactly like a plain int ``batch_size``); ``growth > 1.0`` grows the
    batch geometrically, which is the epoch-adaptive schedule the batch-GD
    comparison probes.  ``cap`` bounds the growth (``None`` leaves it
    unbounded — the aggregate itself never exceeds one chunk per step).
    """

    initial: int = 1
    growth: float = 1.0
    cap: int | None = None

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ValueError("initial batch size must be positive")
        if self.growth < 1.0:
            raise ValueError("growth must be >= 1.0 (batches never shrink)")
        if self.cap is not None and self.cap < self.initial:
            raise ValueError("cap must be >= the initial batch size")

    def batch_size(self, epoch: int) -> int:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        # Uncapped geometric growth exceeds float range long before any real
        # epoch count (float pow raises OverflowError); saturate instead.
        try:
            value = self.initial * self.growth ** epoch
        except OverflowError:
            value = math.inf
        if not math.isfinite(value) or value >= _SATURATED_BATCH:
            size = _SATURATED_BATCH
        else:
            size = max(int(round(value)), 1)
        if self.cap is not None:
            size = min(size, self.cap)
        return size

    @property
    def constant(self) -> bool:
        """True when every epoch uses the same batch size."""
        return self.growth == 1.0 or self.cap == self.initial

    def max_batch_size(self, max_epochs: int) -> int:
        """Largest batch the schedule can reach within ``max_epochs`` epochs."""
        if max_epochs <= 0:
            return self.initial
        return self.batch_size(max_epochs - 1)

    def describe(self) -> str:
        if self.constant:
            return f"batch(constant={self.initial})"
        cap = "" if self.cap is None else f", cap={self.cap}"
        return f"batch(initial={self.initial}, growth={self.growth}{cap})"


def make_batch_schedule(spec: "BatchSchedule | int | dict") -> BatchSchedule:
    """Coerce a user-friendly spec into a schedule.

    * an int becomes the constant schedule;
    * a dict like ``{"initial": 4, "growth": 2.0, "cap": 256}`` builds one;
    * an existing schedule passes through.
    """
    if isinstance(spec, BatchSchedule):
        return spec
    if isinstance(spec, bool):
        raise TypeError("batch_size cannot be a bool")
    if isinstance(spec, int):
        return BatchSchedule(initial=spec)
    if isinstance(spec, dict):
        return BatchSchedule(**spec)
    raise TypeError(f"cannot build a batch schedule from {spec!r}")


def geometric_growth(initial: int = 1, growth: float = 2.0, cap: int | None = None) -> BatchSchedule:
    """Convenience constructor for the epoch-adaptive growth schedule."""
    return BatchSchedule(initial=initial, growth=growth, cap=cap)


def epochs_until(schedule: BatchSchedule, target: int) -> int:
    """First epoch at which the schedule reaches ``target`` examples per step.

    Walks :meth:`BatchSchedule.batch_size` itself rather than inverting the
    growth analytically — the schedule *rounds* per epoch, so the real-valued
    crossing point can differ from the rounded one by an epoch.
    """
    if target <= schedule.initial:
        return 0
    if schedule.constant:
        raise ValueError(f"constant schedule never reaches batch size {target}")
    if schedule.cap is not None and schedule.cap < target:
        raise ValueError(f"capped schedule never reaches batch size {target}")
    # The analytic crossing is within one epoch of the rounded one; probe
    # around it instead of scanning from zero.
    guess = max(math.ceil(math.log(target / schedule.initial, schedule.growth)), 1)
    epoch = guess
    while epoch > 0 and schedule.batch_size(epoch - 1) >= target:
        epoch -= 1
    while schedule.batch_size(epoch) < target:
        epoch += 1
    return epoch
