"""Proximal-point operators (Appendix A).

The full IGD step rule with a regulariser or constraint ``P(w)`` is::

    w_{k+1} = prox_{alpha P}( w_k - alpha_k * grad f_eta(k)(w_k) )

where ``prox_{alpha P}(x) = argmin_w 0.5 ||x - w||^2 + alpha P(w)``.  When
``P`` is the indicator of a convex set the operator is the Euclidean
projection onto that set; for the L1 penalty it is soft-thresholding.  The
operators below cover everything the paper's task zoo needs: L1 and L2
regularisation (LR/SVM/Lasso), box constraints, the probability simplex
(portfolio optimisation) and the L2 ball.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import Model


class ProximalOperator:
    """Base class.  ``apply`` mutates the model component(s) in place."""

    #: Component names this operator applies to; None means every component.
    component: str | None = None

    def apply(self, model: Model, alpha: float) -> None:
        for name, array in model.items():
            if self.component is not None and name != self.component:
                continue
            array[...] = self.apply_to_array(array, alpha)

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        raise NotImplementedError

    def penalty(self, model: Model) -> float:
        """Value of P(w); zero for pure constraint sets whose constraint holds."""
        return 0.0


@dataclass
class IdentityProximal(ProximalOperator):
    """No regularisation / no constraint (P = 0)."""

    component: str | None = None

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        return array

    def penalty(self, model: Model) -> float:
        return 0.0


@dataclass
class L1Proximal(ProximalOperator):
    """Soft-thresholding: prox of ``mu * ||w||_1`` (the LR/SVM regulariser)."""

    mu: float
    component: str | None = None

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ValueError("mu must be non-negative")

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        threshold = alpha * self.mu
        return np.sign(array) * np.maximum(np.abs(array) - threshold, 0.0)

    def penalty(self, model: Model) -> float:
        total = 0.0
        for name, array in model.items():
            if self.component is None or name == self.component:
                total += float(np.abs(array).sum())
        return self.mu * total


@dataclass
class L2Proximal(ProximalOperator):
    """Prox of ``(mu / 2) * ||w||_2^2`` — multiplicative shrinkage."""

    mu: float
    component: str | None = None

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ValueError("mu must be non-negative")

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        return array / (1.0 + alpha * self.mu)

    def penalty(self, model: Model) -> float:
        total = 0.0
        for name, array in model.items():
            if self.component is None or name == self.component:
                total += float(np.sum(array * array))
        return 0.5 * self.mu * total


@dataclass
class BoxProjection(ProximalOperator):
    """Projection onto the box ``[lower, upper]^d``."""

    lower: float = 0.0
    upper: float = 1.0
    component: str | None = None

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError("lower bound exceeds upper bound")

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        return np.clip(array, self.lower, self.upper)


@dataclass
class L2BallProjection(ProximalOperator):
    """Projection onto the Euclidean ball of the given radius."""

    radius: float = 1.0
    component: str | None = None

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        norm = float(np.linalg.norm(array))
        if norm <= self.radius or norm == 0.0:
            return array
        return array * (self.radius / norm)


@dataclass
class SimplexProjection(ProximalOperator):
    """Projection onto the probability simplex ``{w : w >= 0, sum w = z}``.

    Used by the portfolio-optimisation task, whose allocations must lie in the
    simplex Delta (Figure 1B).  Implements the standard sort-based algorithm.
    """

    z: float = 1.0
    component: str | None = None

    def __post_init__(self) -> None:
        if self.z <= 0:
            raise ValueError("simplex scale z must be positive")

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        return project_to_simplex(array, self.z)


def project_to_simplex(vector: np.ndarray, z: float = 1.0) -> np.ndarray:
    """Euclidean projection of ``vector`` onto the simplex of mass ``z``."""
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError("simplex projection expects a 1-D vector")
    sorted_desc = np.sort(vector)[::-1]
    cumulative = np.cumsum(sorted_desc) - z
    indices = np.arange(1, vector.size + 1)
    candidates = sorted_desc - cumulative / indices
    rho = int(np.nonzero(candidates > 0)[0][-1]) + 1
    theta = cumulative[rho - 1] / rho
    return np.maximum(vector - theta, 0.0)


@dataclass
class ComposedProximal(ProximalOperator):
    """Apply several proximal operators in sequence (e.g. L1 then a box)."""

    operators: tuple[ProximalOperator, ...] = ()

    def __init__(self, *operators: ProximalOperator):
        self.operators = tuple(operators)

    def apply(self, model: Model, alpha: float) -> None:
        for op in self.operators:
            op.apply(model, alpha)

    def apply_to_array(self, array: np.ndarray, alpha: float) -> np.ndarray:
        for op in self.operators:
            array = op.apply_to_array(array, alpha)
        return array

    def penalty(self, model: Model) -> float:
        return sum(op.penalty(model) for op in self.operators)
