"""Model state for Bismarck's IGD aggregate.

A :class:`Model` is the UDA *state*: a small named collection of numpy arrays
(e.g. a single coefficient vector for LR/SVM, two factor matrices for LMF, an
emission and a transition matrix for a CRF).  Models are assumed to fit in
memory — the paper makes the same assumption ("models are typically orders of
magnitude smaller than the data").

The class provides the handful of linear-algebra utilities the rest of the
system needs: copying, averaging (for the pure-UDA merge), flattening to a
single vector (for shared-memory parallelism and convergence norms), and
distances/norms (for stopping rules and tests).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np


class Model:
    """A named collection of float64 numpy arrays representing learned state."""

    __slots__ = ("_components", "metadata")

    def __init__(self, components: Mapping[str, np.ndarray], metadata: dict | None = None):
        self._components = {
            name: np.asarray(array, dtype=np.float64) for name, array in components.items()
        }
        #: Free-form metadata carried along with the model (e.g. gradient step
        #: count, the epoch it was produced in).  Not part of equality.
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------- accessors
    def component(self, name: str) -> np.ndarray:
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(
                f"model has no component {name!r}; available: {sorted(self._components)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.component(name)

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def component_names(self) -> list[str]:
        return sorted(self._components)

    def items(self) -> Iterator[tuple[str, np.ndarray]]:
        return iter(self._components.items())

    @property
    def num_parameters(self) -> int:
        return int(sum(array.size for array in self._components.values()))

    # ------------------------------------------------------------ construction
    @classmethod
    def zeros(cls, shapes: Mapping[str, int | tuple[int, ...]]) -> "Model":
        """Create a model with zero-initialised components of the given shapes."""
        return cls({name: np.zeros(shape) for name, shape in shapes.items()})

    @classmethod
    def from_vector(cls, name: str, vector: Sequence[float] | np.ndarray) -> "Model":
        """Create a single-component model from a flat vector."""
        return cls({name: np.asarray(vector, dtype=np.float64)})

    def copy(self) -> "Model":
        return Model(
            {name: array.copy() for name, array in self._components.items()},
            metadata=dict(self.metadata),
        )

    def zeros_like(self) -> "Model":
        return Model({name: np.zeros_like(array) for name, array in self._components.items()})

    # -------------------------------------------------------------- vector ops
    def as_flat_vector(self) -> np.ndarray:
        """Concatenate all components (in sorted name order) into one vector."""
        if not self._components:
            return np.zeros(0)
        return np.concatenate(
            [self._components[name].ravel() for name in sorted(self._components)]
        )

    def load_flat_vector(self, vector: np.ndarray) -> None:
        """Overwrite all components from a flat vector (inverse of as_flat_vector)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.size != self.num_parameters:
            raise ValueError(
                f"flat vector has {vector.size} entries but model has "
                f"{self.num_parameters} parameters"
            )
        offset = 0
        for name in sorted(self._components):
            array = self._components[name]
            count = array.size
            array[...] = vector[offset:offset + count].reshape(array.shape)
            offset += count

    def norm(self) -> float:
        """Euclidean norm over all parameters."""
        return float(np.sqrt(sum(float(np.sum(a * a)) for a in self._components.values())))

    def distance_to(self, other: "Model") -> float:
        """Euclidean distance between two models with identical structure."""
        self._check_compatible(other)
        total = 0.0
        for name, array in self._components.items():
            diff = array - other._components[name]
            total += float(np.sum(diff * diff))
        return float(np.sqrt(total))

    def add_scaled(self, other: "Model", scale: float) -> None:
        """In-place ``self += scale * other``."""
        self._check_compatible(other)
        for name, array in self._components.items():
            array += scale * other._components[name]

    def scale(self, factor: float) -> None:
        """In-place multiplication of every parameter by ``factor``."""
        for array in self._components.values():
            array *= factor

    def _check_compatible(self, other: "Model") -> None:
        if set(self._components) != set(other._components):
            raise ValueError(
                f"incompatible models: components {sorted(self._components)} vs "
                f"{sorted(other._components)}"
            )
        for name, array in self._components.items():
            if array.shape != other._components[name].shape:
                raise ValueError(
                    f"component {name!r} has shape {array.shape} vs "
                    f"{other._components[name].shape}"
                )

    # ------------------------------------------------------------- aggregation
    @staticmethod
    def average(models: Iterable["Model"], weights: Sequence[float] | None = None) -> "Model":
        """(Weighted) average of models — the pure-UDA ``merge`` of the paper.

        Model averaging is exactly the Zinkevich-style parallelisation that the
        parallel UDA uses: each segment trains its own model and the merge
        function averages them.
        """
        models = list(models)
        if not models:
            raise ValueError("cannot average zero models")
        if weights is None:
            weights = [1.0] * len(models)
        weights = np.asarray(list(weights), dtype=np.float64)
        if len(weights) != len(models):
            raise ValueError("weights and models must have the same length")
        total_weight = float(weights.sum())
        if total_weight <= 0:
            raise ValueError("total weight must be positive")
        result = models[0].zeros_like()
        for model, weight in zip(models, weights):
            result.add_scaled(model, float(weight) / total_weight)
        return result

    # -------------------------------------------------------------- dunder etc
    def allclose(self, other: "Model", *, atol: float = 1e-10, rtol: float = 1e-8) -> bool:
        try:
            self._check_compatible(other)
        except ValueError:
            return False
        return all(
            np.allclose(array, other._components[name], atol=atol, rtol=rtol)
            for name, array in self._components.items()
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={array.shape}" for name, array in sorted(self._components.items())
        )
        return f"Model({parts})"
