"""Stopping rules for the Bismarck epoch loop.

The paper supports "an arbitrary Boolean function" as the convergence test and
mentions the common choices: run a fixed number of epochs, stop on a small
relative drop in the loss, or stop when the objective reaches a tolerance
around a known optimal value (the 0.1%-tolerance criterion used throughout the
evaluation section).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class EpochRecord:
    """Bookkeeping for one completed epoch."""

    epoch: int
    objective: float
    elapsed_seconds: float
    gradient_steps: int
    model_norm: float = 0.0


class StoppingRule:
    """Decides, after each epoch, whether to stop training."""

    def should_stop(self, history: Sequence[EpochRecord]) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FixedEpochs(StoppingRule):
    """Stop after exactly ``num_epochs`` epochs."""

    num_epochs: int

    def __post_init__(self) -> None:
        if self.num_epochs <= 0:
            raise ValueError("num_epochs must be positive")

    def should_stop(self, history: Sequence[EpochRecord]) -> bool:
        return len(history) >= self.num_epochs

    def describe(self) -> str:
        return f"fixed_epochs({self.num_epochs})"


@dataclass(frozen=True)
class RelativeImprovement(StoppingRule):
    """Stop when the relative drop in the objective falls below ``tolerance``.

    The classic "relative drop in the loss value" heuristic: stop after an
    epoch whose objective improved by less than ``tolerance`` relative to the
    previous epoch's objective, for ``patience`` consecutive epochs.
    """

    tolerance: float = 1e-4
    patience: int = 1
    min_epochs: int = 2

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.patience <= 0:
            raise ValueError("patience must be positive")

    def should_stop(self, history: Sequence[EpochRecord]) -> bool:
        if len(history) < max(self.min_epochs, self.patience + 1):
            return False
        lagging = 0
        for previous, current in zip(history[-self.patience - 1:-1], history[-self.patience:]):
            denominator = max(abs(previous.objective), 1e-12)
            improvement = (previous.objective - current.objective) / denominator
            if improvement < self.tolerance:
                lagging += 1
        return lagging >= self.patience

    def describe(self) -> str:
        return f"relative_improvement(tol={self.tolerance}, patience={self.patience})"


@dataclass(frozen=True)
class ObjectiveThreshold(StoppingRule):
    """Stop as soon as the objective is at or below an absolute target value."""

    target: float

    def should_stop(self, history: Sequence[EpochRecord]) -> bool:
        return bool(history) and history[-1].objective <= self.target

    def describe(self) -> str:
        return f"objective_threshold({self.target})"


@dataclass(frozen=True)
class ToleranceToOptimum(StoppingRule):
    """Stop when the objective is within ``tolerance`` (relative) of a known optimum.

    This is the paper's completion criterion: "achieving 0.1% tolerance in the
    objective function value".  ``optimum`` is the reference objective value
    (computed offline by a baseline solver or a long IGD run).
    """

    optimum: float
    tolerance: float = 1e-3

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")

    def threshold(self) -> float:
        scale = max(abs(self.optimum), 1e-12)
        return self.optimum + self.tolerance * scale

    def should_stop(self, history: Sequence[EpochRecord]) -> bool:
        return bool(history) and history[-1].objective <= self.threshold()

    def describe(self) -> str:
        return f"tolerance_to_optimum(opt={self.optimum}, tol={self.tolerance})"


@dataclass(frozen=True)
class AnyOf(StoppingRule):
    """Stop when any of the member rules says stop (e.g. tolerance OR max epochs)."""

    rules: tuple[StoppingRule, ...]

    def __init__(self, *rules: StoppingRule):
        object.__setattr__(self, "rules", tuple(rules))
        if not self.rules:
            raise ValueError("AnyOf needs at least one rule")

    def should_stop(self, history: Sequence[EpochRecord]) -> bool:
        return any(rule.should_stop(history) for rule in self.rules)

    def describe(self) -> str:
        return "any_of(" + ", ".join(rule.describe() for rule in self.rules) + ")"


def make_stopping_rule(spec: "StoppingRule | int | dict | None", max_epochs: int = 20) -> StoppingRule:
    """Coerce a user-friendly spec into a stopping rule.

    * None            -> FixedEpochs(max_epochs)
    * an int          -> FixedEpochs(int)
    * a StoppingRule  -> unchanged
    * a dict          -> {"kind": "relative", "tolerance": 1e-4}, etc.
    """
    if spec is None:
        return FixedEpochs(max_epochs)
    if isinstance(spec, StoppingRule):
        return spec
    if isinstance(spec, int):
        return FixedEpochs(spec)
    if isinstance(spec, dict):
        spec = dict(spec)
        kind = spec.pop("kind", "fixed")
        kinds = {
            "fixed": lambda **kw: FixedEpochs(kw.get("num_epochs", max_epochs)),
            "relative": lambda **kw: RelativeImprovement(**kw),
            "threshold": lambda **kw: ObjectiveThreshold(**kw),
            "tolerance": lambda **kw: ToleranceToOptimum(**kw),
        }
        try:
            return kinds[kind](**spec)
        except KeyError:
            raise ValueError(f"unknown stopping rule kind {kind!r}") from None
    raise TypeError(f"cannot build a stopping rule from {spec!r}")
