"""The Bismarck epoch loop (Figure 2): run IGD-as-a-UDA to convergence.

The driver owns everything outside the aggregate itself: the data-ordering
policy, the parallelism mode, the per-epoch loss computation (itself a UDA),
the stopping rule, and the bookkeeping the experiments consume (per-epoch
objective, wall-clock time, gradient-step counts).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..db.checkpoint import TrainingState
from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..db.pass_plan import (
    TrainEpochContext,
    compile_pass,
    epoch_backend,
    evaluation_backend,
)
from ..db.shared_memory import SharedMemoryParallelism
from ..db.table import Table
from ..tasks.base import Task
from .batching import BatchSchedule, make_batch_schedule
from .convergence import EpochRecord, StoppingRule, make_stopping_rule
from .model import Model
from .ordering import OrderingPolicy, make_ordering
from .parallel import PureUDAParallelism
from .proximal import ProximalOperator
from .stepsize import StepSizeSchedule, make_schedule
from .uda import IGDAggregate, LossAggregate


@dataclass
class IGDConfig:
    """Configuration of one Bismarck training run."""

    step_size: StepSizeSchedule | float | dict = 0.1
    max_epochs: int = 20
    #: Data-ordering policy.  Shuffle policies named by string default to
    #: *logical* mode — they hand the backends a permutation over a stable
    #: table version instead of rewriting the heap, so the example cache
    #: survives re-shuffles; pass e.g. ``ShuffleAlways(mode="physical")`` to
    #: get the paper's physical rewrite (the engine-overhead experiments do).
    ordering: OrderingPolicy | str | None = "shuffle_once"
    stopping: StoppingRule | int | dict | None = None
    parallelism: PureUDAParallelism | SharedMemoryParallelism | None = None
    proximal: ProximalOperator | None = None
    seed: int | None = 0
    #: Whether to evaluate the objective after every epoch (needed by most
    #: stopping rules; can be disabled for pure-throughput measurements).
    compute_objective: bool = True
    #: Execution path for training epochs and loss passes on *every* backend
    #: (serial, pure-UDA segmented, shared-memory): "auto" serves aggregates
    #: from the cached chunk plane (cached decoded examples, vectorized loss,
    #: engine overhead charged per chunk) whenever the task and table support
    #: it, falling back to per-tuple otherwise; "per_tuple" forces the paper's
    #: tuple-at-a-time UDA protocol; "chunked" requires the fast path and
    #: errors if it is unavailable.  Exact IGD (batch_size == 1) produces
    #: bit-for-bit identical models on either path.
    execution: str = "auto"
    #: Mini-batch size.  1 (default) is the paper's exact IGD: one gradient
    #: step per tuple.  B > 1 is opt-in mini-batch SGD — one averaged-gradient
    #: step per B examples — and requires the chunked path.  A
    #: :class:`~repro.core.batching.BatchSchedule` (or its dict spec) makes
    #: the size epoch-adaptive: constant or geometric growth.
    batch_size: int | BatchSchedule | dict = 1
    #: Whether a process-backed parallel run also executes its loss/objective
    #: pass on the worker pool (the whole-loop parallelisation).  False keeps
    #: the gradient-only parallelisation: evaluation stays on the serial
    #: vectorized path.  Irrelevant for serial and in-process parallel runs,
    #: whose evaluation is serial either way.
    parallel_evaluation: bool = True
    #: Save a :class:`~repro.db.checkpoint.TrainingState` (and, on a durable
    #: engine, a whole-database checkpoint) every N completed epochs.  0
    #: disables epoch checkpointing.  A run resumed from the saved state
    #: (``train(..., resume_from=state)``) continues bit-for-bit for
    #: deterministic schemes.
    checkpoint_every: int = 0
    #: Name the training state is saved under (defaults to the table name).
    checkpoint_name: str | None = None
    #: Numeric dtype of the chunk plane's dense feature payloads.
    #: ``"float64"`` (default) keeps every deterministic path bit-for-bit;
    #: ``"float32"`` opts the vectorized kernels and shared-memory chunk
    #: pages into half-width features — the model itself stays float64 and
    #: numpy's upcasting rules mix the two, so results stay in the same
    #: objective band but are *not* bit-equal to float64 runs.
    compute_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.execution not in ("auto", "per_tuple", "chunked"):
            raise ValueError(f"unknown execution mode {self.execution!r}")
        if self.compute_dtype not in ("float64", "float32"):
            raise ValueError(
                f"unknown compute dtype {self.compute_dtype!r}; "
                "expected 'float64' or 'float32'"
            )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        schedule = make_batch_schedule(self.batch_size)
        if schedule.max_batch_size(self.max_epochs) > 1:
            if self.execution == "per_tuple":
                raise ValueError("mini-batch IGD (batch_size > 1) requires the chunked path")
            if self.parallelism is not None:
                raise ValueError("mini-batch IGD is only implemented for serial execution")
            # "auto" would silently fall back to per-tuple on an unbatchable
            # workload and then die mid-epoch; mini-batch runs must instead
            # fail fast at the aggregation entry point.
            self.execution = "chunked"

    def resolved_stopping(self) -> StoppingRule:
        return make_stopping_rule(self.stopping, max_epochs=self.max_epochs)

    def resolved_ordering(self) -> OrderingPolicy:
        return make_ordering(self.ordering)

    def resolved_batch_schedule(self) -> BatchSchedule:
        return make_batch_schedule(self.batch_size)


@dataclass
class IGDResult:
    """Outcome of a Bismarck training run."""

    model: Model
    history: list[EpochRecord] = field(default_factory=list)
    total_seconds: float = 0.0
    converged: bool = False
    task_name: str = ""
    ordering_name: str = ""
    parallelism_name: str = "serial"
    shuffle_seconds: float = 0.0
    #: Version of the trained table when the run finished — the watermark a
    #: later :meth:`BismarckRunner.partial_fit` continues from.  ``-1`` for
    #: runs with no backing table (``train_in_memory``).
    table_version: int = -1
    #: Structured RecoveryEvent / DegradationEvent records this run absorbed
    #: (supervised-pool respawns, backend fallbacks).  Empty for clean runs.
    recovery_events: list = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.history)

    @property
    def respawn_count(self) -> int:
        """Worker-respawn recovery rounds absorbed during this run."""
        return sum(
            1 for event in self.recovery_events if getattr(event, "respawned", False)
        )

    @property
    def degraded(self) -> bool:
        """True when any pass fell down the backend degradation ladder."""
        return any(
            hasattr(event, "to_backend") for event in self.recovery_events
        )

    @property
    def final_objective(self) -> float:
        return self.history[-1].objective if self.history else float("nan")

    def objective_trace(self) -> list[float]:
        return [record.objective for record in self.history]

    def time_trace(self) -> list[float]:
        """Cumulative wall-clock seconds at the end of each epoch."""
        cumulative = 0.0
        trace = []
        for record in self.history:
            cumulative += record.elapsed_seconds
            trace.append(cumulative)
        return trace

    def epochs_to_reach(self, target_objective: float) -> int | None:
        """First epoch count at which the objective is <= target (1-based)."""
        for record in self.history:
            if record.objective <= target_objective:
                return record.epoch + 1
        return None

    def time_to_reach(self, target_objective: float) -> float | None:
        """Cumulative seconds at which the objective first reached the target."""
        cumulative = 0.0
        for record in self.history:
            cumulative += record.elapsed_seconds
            if record.objective <= target_objective:
                return cumulative
        return None


class BismarckRunner:
    """Trains one task over one table in a database using IGD-as-a-UDA."""

    def __init__(
        self,
        database: Database | SegmentedDatabase,
        task: Task,
        config: IGDConfig | None = None,
    ):
        self.database = database
        self.task = task
        self.config = config or IGDConfig()

    # ---------------------------------------------------------------- public
    def train(
        self,
        table_name: str,
        *,
        initial_model: Model | None = None,
        resume_from: TrainingState | None = None,
    ) -> IGDResult:
        """Run the epoch loop; optionally resume an interrupted run.

        ``resume_from`` continues from a saved
        :class:`~repro.db.checkpoint.TrainingState` (e.g. recovered by
        ``Database.open`` after a crash): the model, RNG, ordering policy
        (with its drawn permutations), history and step counter pick up at
        ``next_epoch``, and — crucially — ``prepare`` is *not* re-run, so a
        physically shuffled heap is not reshuffled.  Deterministic schemes
        (serial, pure-UDA process) resume bit-for-bit.
        """
        config = self.config
        stopping = config.resolved_stopping()
        schedule = make_schedule(config.step_size)
        proximal = config.proximal if config.proximal is not None else self.task.proximal

        table = self._master_table(table_name)
        total_start = time.perf_counter()
        # Snapshot the engine's recovery log so the result reports exactly the
        # incidents (respawns, degradations) absorbed by *this* run.
        engine = self._engine()
        recovery_mark = len(getattr(engine, "recovery_log", []))

        if resume_from is not None:
            rng = copy.deepcopy(resume_from.rng)
            ordering = (
                copy.deepcopy(resume_from.ordering)
                if resume_from.ordering is not None
                else config.resolved_ordering()
            )
            model = resume_from.model.copy()
            step_offset = resume_from.step_offset
            history = list(resume_from.history)
            start_epoch = resume_from.next_epoch
            # The recovered master heap is authoritative; segments must be
            # rebuilt/extended from it before the first resumed epoch.
            self._maybe_redistribute(table_name, -1)
        else:
            rng = np.random.default_rng(config.seed)
            ordering = config.resolved_ordering()
            version_before = table.version
            ordering.prepare(table, rng)
            self._maybe_redistribute(table_name, version_before)
            model = (
                initial_model.copy()
                if initial_model is not None
                else self.task.initial_model(rng)
            )
            step_offset = 0
            history = []
            start_epoch = 0

        converged = False
        # A resumed run whose restored history already satisfies the stopping
        # rule (the crash happened after convergence but before persistence)
        # must not run extra epochs.
        done = bool(history) and config.compute_objective and stopping.should_stop(history)
        if done:
            converged = True

        for epoch in range(start_epoch, config.max_epochs):
            if done:
                break
            epoch_start = time.perf_counter()
            version_before = table.version
            ordering.before_epoch(table, epoch, rng)
            self._maybe_redistribute(table_name, version_before)

            model, steps = self._run_epoch(
                table_name, table, model, schedule, proximal, epoch, step_offset,
                ordering, rng,
            )
            step_offset += steps
            # Mid-epoch crash hazard: the gradient pass ran, nothing below
            # (objective, history, checkpoint) has.  Recovery must fall back
            # to the previous epoch's checkpoint.
            self._crash_point(engine, "epoch")

            objective = float("nan")
            if config.compute_objective:
                objective = self._compute_objective(table_name, table, model, proximal)
            history.append(
                EpochRecord(
                    epoch=epoch,
                    objective=objective,
                    elapsed_seconds=time.perf_counter() - epoch_start,
                    gradient_steps=step_offset,
                    model_norm=model.norm(),
                )
            )
            self._maybe_checkpoint(
                engine, table_name, table, model, rng, ordering, epoch, step_offset,
                history,
            )
            if config.compute_objective and stopping.should_stop(history):
                converged = True
                break

        return IGDResult(
            model=model,
            history=history,
            total_seconds=time.perf_counter() - total_start,
            converged=converged,
            task_name=self.task.describe(),
            ordering_name=ordering.describe(),
            parallelism_name=self._parallelism_name(),
            shuffle_seconds=ordering.shuffle_seconds,
            table_version=table.version,
            recovery_events=list(
                getattr(engine, "recovery_log", [])[recovery_mark:]
            ),
        )

    def partial_fit(
        self,
        table_name: str,
        *,
        initial_model: Model | None = None,
        since_version: int | None = None,
        full_pass_every: int = 0,
        max_epochs: int | None = None,
        resume_from: TrainingState | None = None,
    ) -> IGDResult:
        """Continue training over the rows appended since ``since_version``.

        The incremental-ingest entry point.  The table's append-aware ledger
        classifies how it moved from ``since_version`` to now:

        * ``same`` — nothing new arrived; returns immediately with a copy of
          the warm model (``converged=True``, zero epochs).
        * ``append`` — runs IGD epochs whose visit order covers only the
          delta rows, each epoch freshly permuted, plus a periodic pass over
          the *whole* table every ``full_pass_every`` delta epochs (0 =
          never) so old rows keep influencing the model.  The heap is never
          rewritten, so the example cache extends incrementally and the cost
          of refreshing the model scales with the delta, not the table.
        * ``rewrite`` — the premise that old rows were already absorbed is
          gone; falls back to a full :meth:`train` warm-started from
          ``initial_model``.

        A missing warm start (``initial_model`` or ``since_version`` is
        ``None``) also falls back to full training.  The objective, when
        computed, is always the full-table objective — it measures model
        freshness against *all* data, which is what the stopping rule and
        the streaming experiments care about.  Composes with every backend
        :meth:`train` supports and with epoch-adaptive batch schedules.

        ``resume_from`` short-circuits everything: a crash-interrupted run's
        saved :class:`~repro.db.checkpoint.TrainingState` (recovered by
        ``Database.open``) is continued via :meth:`train`'s resume path —
        after the WAL replay reconstructed the table and its ledger, the
        state's watermark and the ledger agree on exactly the unreplayed
        delta.
        """
        config = self.config
        if resume_from is not None:
            return self.train(table_name, resume_from=resume_from)
        table = self._master_table(table_name)
        delta = (
            table.classify_delta(since_version) if since_version is not None else None
        )
        if initial_model is None or delta is None or delta.kind == "rewrite":
            return self.train(table_name, initial_model=initial_model)

        engine = self._engine()
        recovery_mark = len(getattr(engine, "recovery_log", []))
        total_start = time.perf_counter()
        model = initial_model.copy()
        if delta.is_same:
            return IGDResult(
                model=model,
                history=[],
                total_seconds=time.perf_counter() - total_start,
                converged=True,
                task_name=self.task.describe(),
                ordering_name="delta[0]",
                parallelism_name=self._parallelism_name(),
                table_version=table.version,
            )

        rng = np.random.default_rng(config.seed)
        stopping = config.resolved_stopping()
        schedule = make_schedule(config.step_size)
        proximal = config.proximal if config.proximal is not None else self.task.proximal
        if isinstance(self.database, SegmentedDatabase):
            # Incremental on appends: extends the existing segment tables.
            self.database.redistribute(table_name)

        epochs = max_epochs if max_epochs is not None else config.max_epochs
        base_rows = delta.base_rows
        step_offset = 0
        history: list[EpochRecord] = []
        converged = False
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            full = full_pass_every > 0 and (epoch + 1) % full_pass_every == 0
            orders = self._delta_orders(table_name, table, 0 if full else base_rows, rng)
            model, steps = self._run_epoch(
                table_name, table, model, schedule, proximal, epoch, step_offset,
                None, rng, explicit_orders=orders,
            )
            step_offset += steps
            self._crash_point(engine, "epoch")
            objective = float("nan")
            if config.compute_objective:
                objective = self._compute_objective(table_name, table, model, proximal)
            history.append(
                EpochRecord(
                    epoch=epoch,
                    objective=objective,
                    elapsed_seconds=time.perf_counter() - epoch_start,
                    gradient_steps=step_offset,
                    model_norm=model.norm(),
                )
            )
            # Delta epochs checkpoint too (ordering=None: a resumed
            # continuation run re-covers the whole table, which is safe —
            # the bit-for-bit resume contract is train()'s).
            self._maybe_checkpoint(
                engine, table_name, table, model, rng, None, epoch, step_offset,
                history,
            )
            if config.compute_objective and stopping.should_stop(history):
                converged = True
                break

        return IGDResult(
            model=model,
            history=history,
            total_seconds=time.perf_counter() - total_start,
            converged=converged,
            task_name=self.task.describe(),
            ordering_name=f"delta[{delta.rows_added}]",
            parallelism_name=self._parallelism_name(),
            table_version=table.version,
            recovery_events=list(
                getattr(engine, "recovery_log", [])[recovery_mark:]
            ),
        )

    def _delta_orders(
        self, table_name: str, table: Table, start: int, rng: np.random.Generator
    ) -> tuple:
        """Permuted visit orders over master rows ``[start, len)``.

        Returns ``(row_order, segment_orders)`` shaped for the configured
        backend.  For segmented pure-UDA runs the master-row window is mapped
        onto each segment: round-robin placement puts master row ``g`` at
        segment ``g % S``, so the first ``ceil_div``-style prefix of every
        segment holds old rows and the suffix holds the delta.
        """
        spec = self.config.parallelism
        if isinstance(spec, PureUDAParallelism) and isinstance(self.database, SegmentedDatabase):
            segments = self.database.segments_of(table_name)
            count = len(segments)
            orders = []
            for index, segment in enumerate(segments):
                seg_start = start // count + (1 if index < start % count else 0)
                orders.append(seg_start + rng.permutation(len(segment) - seg_start))
            return None, orders
        return start + rng.permutation(len(table) - start), None

    # -------------------------------------------------------------- internals
    def _crash_point(self, engine, op: str) -> None:
        """Fire the engine's crash injector at a named hazard point."""
        injector = getattr(engine, "crash_injector", None)
        if injector is not None and injector.armed:
            injector.crash_point(op)

    def _maybe_checkpoint(
        self,
        engine,
        table_name: str,
        table: Table,
        model: Model,
        rng: np.random.Generator,
        ordering: OrderingPolicy | None,
        epoch: int,
        step_offset: int,
        history: list,
    ) -> None:
        """Save a TrainingState (and a durable checkpoint) at epoch boundaries.

        The RNG and the ordering policy are *deep-copied* mid-stream: shuffle
        policies cache lazily drawn permutations, and both the cache and the
        generator state are part of what makes a resumed run bit-for-bit
        identical to the uninterrupted one.
        """
        config = self.config
        if config.checkpoint_every <= 0:
            return
        if (epoch + 1) % config.checkpoint_every != 0:
            return
        if not hasattr(engine, "checkpoint"):
            return
        name = (config.checkpoint_name or table_name).lower()
        state = TrainingState(
            name=name,
            task=self.task.describe(),
            table_name=table_name.lower(),
            table_version=table.version,
            model=model.copy(),
            next_epoch=epoch + 1,
            step_offset=step_offset,
            history=list(history),
            rng=copy.deepcopy(rng),
            ordering=copy.deepcopy(ordering),
        )
        engine.checkpoint(training={name: state})

    def _engine(self) -> Database:
        if isinstance(self.database, SegmentedDatabase):
            return self.database.master
        return self.database

    def _master_table(self, table_name: str) -> Table:
        return self._engine().table(table_name)

    def _maybe_redistribute(self, table_name: str, version_before: int) -> None:
        """Re-partition segments after the ordering policy touched the heap.

        Keyed on the table's mutation counter, so *logical* shuffles — which
        never rewrite the heap — keep the existing segment tables (and their
        example-cache entries) alive across epochs.
        """
        if not isinstance(self.database, SegmentedDatabase):
            return
        if self.database.master.table(table_name).version != version_before:
            self.database.redistribute(table_name)

    def _parallelism_name(self) -> str:
        spec = self.config.parallelism
        if spec is None:
            return "serial"
        suffix = "+process" if getattr(spec, "backend", "") == "process" else ""
        if isinstance(spec, PureUDAParallelism):
            return f"pure_uda{suffix}"
        return f"shared_memory[{spec.scheme}x{spec.workers}]{suffix}"

    def _run_epoch(
        self,
        table_name: str,
        table: Table,
        model: Model,
        schedule: StepSizeSchedule,
        proximal: ProximalOperator,
        epoch: int,
        step_offset: int,
        ordering: OrderingPolicy | None,
        rng: np.random.Generator,
        *,
        explicit_orders: tuple | None = None,
    ) -> tuple[Model, int]:
        """Compile this epoch's gradient pass to a PassPlan and execute it.

        The former spec×backend ``if/elif`` ladder lives in
        :func:`repro.db.pass_plan.epoch_backend`; here we only gather the
        epoch's ingredients (visit orders, aggregate factory, epoch context)
        into one plan that any backend can run.  ``explicit_orders`` — a
        ``(row_order, segment_orders)`` pair — bypasses the ordering policy
        entirely; :meth:`partial_fit` uses it to visit only delta rows.
        """
        spec = self.config.parallelism
        if (
            isinstance(spec, SharedMemoryParallelism)
            and spec.backend == "process"
            and self.config.execution == "per_tuple"
        ):
            raise ValueError(
                "the process backend serves workers from the cached "
                "chunk plane and cannot replay the per-tuple protocol"
            )
        batch_size = self.config.resolved_batch_schedule().batch_size(epoch)
        factory = lambda: IGDAggregate(  # noqa: E731 - tiny closure
            self.task,
            schedule,
            initial_model=model,
            proximal=proximal,
            epoch=epoch,
            step_offset=step_offset,
            batch_size=batch_size,
        )
        row_order = None
        segment_orders: list | None = None
        if explicit_orders is not None:
            row_order, segment_orders = explicit_orders
        elif isinstance(spec, PureUDAParallelism) and isinstance(self.database, SegmentedDatabase):
            # Logical shuffles permute each shared-nothing segment in place
            # (rows never migrate between segments, exactly like independent
            # segment-local ORDER BY RANDOM() runs — the partition index keys
            # each segment's own permutation), so per-segment example caches
            # survive every re-shuffle.
            segment_orders = [
                ordering.epoch_row_order(len(segment), epoch, rng, partition=index)
                for index, segment in enumerate(self.database.segments_of(table_name))
            ]
            if all(order is None for order in segment_orders):
                segment_orders = None
        else:
            row_order = ordering.epoch_row_order(len(table), epoch, rng)
        backend = epoch_backend(self.database, spec)
        plan = compile_pass(
            "train",
            table,
            factory,
            row_order=row_order,
            execution=self.config.execution,
            workers=getattr(spec, "workers", 1) or 1,
            compute_dtype=self.config.compute_dtype,
            train=TrainEpochContext(
                task=self.task,
                model=model,
                schedule=schedule,
                proximal=proximal,
                epoch=epoch,
                step_offset=step_offset,
                spec=spec,
                batch_size=batch_size,
                segment_row_orders=segment_orders,
            ),
        )
        return backend.run(plan)

    def _compute_objective(
        self, table_name: str, table: Table, model: Model, proximal: ProximalOperator
    ) -> float:
        # The loss pass rides the same execution path — and, for
        # process-backed runs, the same worker pool — as training; the shared
        # example cache is keyed on the table's version, so any shuffle or
        # re-clustering between epochs busts it automatically.
        spec = self.config.parallelism if self.config.parallel_evaluation else None
        backend, workers = evaluation_backend(self.database, spec)
        plan = compile_pass(
            "loss",
            table,
            lambda: LossAggregate(self.task, model),
            execution=self.config.execution,
            workers=workers,
            compute_dtype=self.config.compute_dtype,
        )
        data_term = backend.run(plan)
        return float(data_term) + proximal.penalty(model)


def train(
    task: Task,
    database: Database | SegmentedDatabase,
    table_name: str,
    *,
    config: IGDConfig | None = None,
    initial_model: Model | None = None,
    **config_overrides,
) -> IGDResult:
    """Convenience wrapper: build a runner and train.

    Keyword overrides are applied on top of ``config`` (or a default config),
    e.g. ``train(task, db, "points", max_epochs=5, ordering="clustered")``.
    """
    base = config or IGDConfig()
    if config_overrides:
        values = {**base.__dict__, **config_overrides}
        base = IGDConfig(**values)
    return BismarckRunner(database, task, base).train(table_name, initial_model=initial_model)


def train_in_memory(
    task: Task,
    examples: Sequence,
    *,
    step_size: StepSizeSchedule | float | dict = 0.1,
    epochs: int = 20,
    shuffle: bool = True,
    seed: int | None = 0,
    proximal: ProximalOperator | None = None,
    compute_objective: bool = True,
) -> IGDResult:
    """Run plain IGD over an in-memory example list (no database involved).

    Used by baselines, unit tests and the parallel-convergence experiments that
    need to control the example stream directly.
    """
    rng = np.random.default_rng(seed)
    schedule = make_schedule(step_size)
    proximal = proximal if proximal is not None else task.proximal
    data = list(examples)
    if shuffle:
        permutation = rng.permutation(len(data))
        data = [data[i] for i in permutation]

    model = task.initial_model(rng)
    history: list[EpochRecord] = []
    steps = 0
    total_start = time.perf_counter()
    for epoch in range(epochs):
        epoch_start = time.perf_counter()
        for example in data:
            alpha = schedule.step_size(steps, epoch)
            task.gradient_step(model, example, alpha)
            proximal.apply(model, alpha)
            steps += 1
        objective = float("nan")
        if compute_objective:
            objective = task.total_loss(model, data) + proximal.penalty(model)
        history.append(
            EpochRecord(
                epoch=epoch,
                objective=objective,
                elapsed_seconds=time.perf_counter() - epoch_start,
                gradient_steps=steps,
                model_norm=model.norm(),
            )
        )
    return IGDResult(
        model=model,
        history=history,
        total_seconds=time.perf_counter() - total_start,
        converged=False,
        task_name=task.describe(),
        ordering_name="shuffle_once" if shuffle else "as_given",
        parallelism_name="in_memory",
    )
