"""Step-size schedules for incremental gradient descent (Appendix B).

The paper notes that real systems typically use a constant step size or a
simple decaying rule, while the convergence proofs require either the
*divergent series* rule (``alpha_k -> 0`` with ``sum alpha_k = inf``) or the
*geometric* rule (``alpha_k = alpha_0 * rho^k``).  All three are provided, plus
the per-epoch decay Bismarck's implementation actually applies (constant
within an epoch, multiplied by a decay factor between epochs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class StepSizeSchedule:
    """Base class: maps a (0-based) gradient-step index and epoch to a step size."""

    def step_size(self, step_index: int, epoch: int) -> float:
        raise NotImplementedError

    def step_sizes(self, start_index: int, count: int, epoch: int) -> np.ndarray:
        """Step sizes for ``count`` consecutive steps starting at ``start_index``.

        The default materialises per-step calls so the array is bit-identical
        to the per-tuple sequence; constant-per-epoch schedules override this
        with a single fill.
        """
        return np.array(
            [self.step_size(start_index + i, epoch) for i in range(count)], dtype=np.float64
        )

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class ConstantStepSize(StepSizeSchedule):
    """``alpha_k = alpha`` for all k."""

    alpha: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("step size must be positive")

    def step_size(self, step_index: int, epoch: int) -> float:
        return self.alpha

    def step_sizes(self, start_index: int, count: int, epoch: int) -> np.ndarray:
        return np.full(count, self.alpha)

    def describe(self) -> str:
        return f"constant(alpha={self.alpha})"


@dataclass(frozen=True)
class DiminishingStepSize(StepSizeSchedule):
    """Divergent-series rule ``alpha_k = alpha_0 / (1 + k)**power``.

    For ``0 < power <= 1`` this satisfies ``alpha_k -> 0`` and
    ``sum_k alpha_k = infinity`` (Appendix B), which is the classical
    Robbins–Monro condition.
    """

    alpha0: float
    power: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha0 <= 0:
            raise ValueError("alpha0 must be positive")
        if not 0 < self.power <= 1:
            raise ValueError("power must be in (0, 1] for the divergent-series rule")

    def step_size(self, step_index: int, epoch: int) -> float:
        return self.alpha0 / (1.0 + step_index) ** self.power

    def describe(self) -> str:
        return f"diminishing(alpha0={self.alpha0}, power={self.power})"


@dataclass(frozen=True)
class GeometricStepSize(StepSizeSchedule):
    """Geometric rule ``alpha_k = alpha_0 * rho**k`` with ``0 < rho < 1``."""

    alpha0: float
    rho: float

    def __post_init__(self) -> None:
        if self.alpha0 <= 0:
            raise ValueError("alpha0 must be positive")
        if not 0 < self.rho < 1:
            raise ValueError("rho must be in (0, 1)")

    def step_size(self, step_index: int, epoch: int) -> float:
        return self.alpha0 * self.rho ** step_index

    def describe(self) -> str:
        return f"geometric(alpha0={self.alpha0}, rho={self.rho})"


@dataclass(frozen=True)
class EpochDecayStepSize(StepSizeSchedule):
    """Constant within an epoch, multiplied by ``decay`` between epochs.

    This is the schedule Bismarck's reference implementation (and MADlib's
    SGD-based modules) use in practice: ``alpha_e = alpha_0 * decay**e``.
    """

    alpha0: float
    decay: float = 0.95

    def __post_init__(self) -> None:
        if self.alpha0 <= 0:
            raise ValueError("alpha0 must be positive")
        if not 0 < self.decay <= 1:
            raise ValueError("decay must be in (0, 1]")

    def step_size(self, step_index: int, epoch: int) -> float:
        return self.alpha0 * self.decay ** epoch

    def step_sizes(self, start_index: int, count: int, epoch: int) -> np.ndarray:
        return np.full(count, self.alpha0 * self.decay ** epoch)

    def describe(self) -> str:
        return f"epoch_decay(alpha0={self.alpha0}, decay={self.decay})"


def make_schedule(spec: StepSizeSchedule | float | dict) -> StepSizeSchedule:
    """Coerce a user-friendly spec into a schedule.

    * a float becomes :class:`ConstantStepSize`;
    * a dict like ``{"kind": "epoch_decay", "alpha0": 0.1, "decay": 0.9}`` builds
      the named schedule;
    * an existing schedule is returned unchanged.
    """
    if isinstance(spec, StepSizeSchedule):
        return spec
    if isinstance(spec, (int, float)):
        return ConstantStepSize(float(spec))
    if isinstance(spec, dict):
        kinds = {
            "constant": ConstantStepSize,
            "diminishing": DiminishingStepSize,
            "geometric": GeometricStepSize,
            "epoch_decay": EpochDecayStepSize,
        }
        spec = dict(spec)
        kind = spec.pop("kind", "constant")
        try:
            cls = kinds[kind]
        except KeyError:
            raise ValueError(f"unknown step-size kind {kind!r}; expected one of {sorted(kinds)}") from None
        return cls(**spec)
    raise TypeError(f"cannot build a step-size schedule from {spec!r}")
