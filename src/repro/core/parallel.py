"""Parallelising the IGD aggregate (Section 3.3).

Two mechanisms, both built from features every RDBMS offers:

* **Pure UDA** — shared-nothing parallelism: each data segment trains its own
  model and the engine combines them with the aggregate's ``merge`` function
  (model averaging).  This is handled by
  :class:`repro.db.parallel.SegmentedDatabase` together with
  :meth:`repro.core.uda.IGDAggregate.merge`; the spec class here simply
  requests it.

* **Shared-memory UDA** — the model lives in the database's shared-memory
  arena and is updated concurrently by workers scanning different portions of
  the data.  The simulation (and everything else shared-memory: the arena,
  the concurrency schemes, the epoch runner) lives in
  :mod:`repro.db.shared_memory`; this module re-exports the public API for
  back-compat, since historically the epoch runner was defined here.

Both backends consume the same cached chunk plane as the serial executor
(:mod:`repro.db.chunk_plan`): the segmented engine runs ``transition_chunk``
over per-segment cached batches, and the shared-memory epoch slices one cached
decoded-example list across its workers.  The *convergence* behaviour (what
Figure 9A measures) depends only on the update schedule and is reproduced
faithfully; the *wall-clock speed-up* (Figure 9B) is reproduced with the
analytic cost model in :func:`modeled_speedup`, calibrated by the measured
serial per-epoch time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..db.chunk_plan import partition_round_robin
from ..db.shared_memory import (
    SHARED_MEMORY_SCHEMES,
    SharedMemoryArena,
    SharedMemoryParallelism,
    run_shared_memory_epoch,
)

__all__ = [
    "SHARED_MEMORY_SCHEMES",
    "PureUDAParallelism",
    "SharedMemoryArena",
    "SharedMemoryParallelism",
    "modeled_epoch_seconds",
    "modeled_speedup",
    "partition_round_robin",
    "run_shared_memory_epoch",
]


@dataclass(frozen=True)
class PureUDAParallelism:
    """Request shared-nothing (merge-based) parallelism.

    ``segments`` of None means "use the database's segment count".
    ``backend="process"`` runs each segment in its own OS worker process
    (:mod:`repro.db.process_backend`) instead of sequentially in this one;
    for a fixed seed and segment count the two backends are bit-for-bit
    identical (same partitions, same float operations, same merge order).
    """

    segments: int | None = None
    backend: str = "in_process"
    name: str = "pure_uda"

    def __post_init__(self) -> None:
        if self.backend not in ("in_process", "process"):
            raise ValueError(
                f"unknown pure-UDA backend {self.backend!r}; "
                "expected 'in_process' or 'process'"
            )


ParallelismSpec = "PureUDAParallelism | SharedMemoryParallelism | None"


# ---------------------------------------------------------------------------
# Analytic speed-up model (Figure 9B)
# ---------------------------------------------------------------------------
def modeled_epoch_seconds(
    serial_seconds: float,
    scheme: str,
    workers: int,
    *,
    model_passing_cost: float = 0.0,
    model_parameters: int = 1,
) -> float:
    """Wall-clock model of one parallel epoch, calibrated by the serial time.

    * ``lock``     — every update serialises on the model lock, so the gradient
      work cannot overlap: no speed-up (plus a small lock-handling overhead).
    * ``aig``      — near-linear scaling with a per-worker penalty for the
      per-component atomic operations.
    * ``nolock``   — near-linear scaling with a tiny cache-coherence penalty.
    * ``pure_uda`` — linear scaling of the scan, plus a per-segment model
      serialisation/merge cost proportional to the model size (this is what
      makes the pure UDA slow on engines with expensive model passing).
    """
    if serial_seconds < 0:
        raise ValueError("serial_seconds must be non-negative")
    if workers <= 0:
        raise ValueError("workers must be positive")
    if workers == 1:
        return serial_seconds

    if scheme == "lock":
        return serial_seconds * (1.0 + 0.02 * (workers - 1))
    if scheme == "aig":
        return serial_seconds / workers * (1.0 + 0.10 * (workers - 1) / workers) \
            + 0.01 * serial_seconds
    if scheme == "nolock":
        return serial_seconds / workers * (1.0 + 0.03 * (workers - 1) / workers)
    if scheme == "pure_uda":
        merge_cost = model_passing_cost * workers * max(model_parameters, 1) * 1e-7
        return serial_seconds / workers * (1.0 + 0.05) + merge_cost + 0.05 * serial_seconds / workers * (workers - 1) ** 0.5
    raise ValueError(f"unknown scheme {scheme!r}")


def modeled_speedup(
    serial_seconds: float,
    scheme: str,
    workers: int,
    *,
    model_passing_cost: float = 0.0,
    model_parameters: int = 1,
) -> float:
    """Speed-up of the per-epoch gradient computation over the serial run."""
    parallel_seconds = modeled_epoch_seconds(
        serial_seconds,
        scheme,
        workers,
        model_passing_cost=model_passing_cost,
        model_parameters=model_parameters,
    )
    if parallel_seconds <= 0:
        return float(workers)
    return serial_seconds / parallel_seconds
