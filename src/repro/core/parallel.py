"""Parallelising the IGD aggregate (Section 3.3).

Two mechanisms, both built from features every RDBMS offers:

* **Pure UDA** — shared-nothing parallelism: each data segment trains its own
  model and the engine combines them with the aggregate's ``merge`` function
  (model averaging).  This is handled by
  :class:`repro.db.parallel.SegmentedDatabase` together with
  :meth:`repro.core.uda.IGDAggregate.merge`; the spec class here simply
  requests it.

* **Shared-memory UDA** — the model lives in the database's shared-memory
  arena and is updated concurrently by workers scanning different portions of
  the data.  Three concurrency schemes are modelled, as in the paper:
  ``lock`` (serialise every update behind the segment lock), ``aig`` (atomic
  per-component updates), and ``nolock`` (Hogwild-style unsynchronised
  updates).

The reproduction is a single Python process, so "concurrency" is simulated by
a deterministic interleaving: workers take turns processing small batches of
their partition against a snapshot of the shared model and then apply their
accumulated delta using the scheme's write primitive.  The *convergence*
behaviour (what Figure 9A measures) depends only on this update schedule and
is therefore reproduced faithfully; the *wall-clock speed-up* (Figure 9B) is
reproduced with the analytic cost model in :func:`modeled_speedup`, calibrated
by the measured serial per-epoch time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..db.shared_memory import SharedMemoryArena
from ..db.table import Table
from ..db.types import Row
from ..tasks.base import Task
from .model import Model
from .proximal import IdentityProximal, ProximalOperator
from .stepsize import StepSizeSchedule, make_schedule

SHARED_MEMORY_SCHEMES = ("lock", "aig", "nolock")


@dataclass(frozen=True)
class PureUDAParallelism:
    """Request shared-nothing (merge-based) parallelism.

    ``segments`` of None means "use the database's segment count".
    """

    segments: int | None = None
    name: str = "pure_uda"


@dataclass(frozen=True)
class SharedMemoryParallelism:
    """Request shared-memory parallelism with a concurrency scheme."""

    scheme: str = "nolock"
    workers: int = 8
    #: How many examples a worker processes against one stale snapshot before
    #: publishing its delta.  None picks the scheme default (1 for lock/aig,
    #: ``workers`` for nolock, approximating Hogwild staleness).
    staleness: int | None = None
    name: str = "shared_memory"

    def __post_init__(self) -> None:
        if self.scheme not in SHARED_MEMORY_SCHEMES:
            raise ValueError(
                f"unknown shared-memory scheme {self.scheme!r}; "
                f"expected one of {SHARED_MEMORY_SCHEMES}"
            )
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.staleness is not None and self.staleness <= 0:
            raise ValueError("staleness must be positive")

    def effective_staleness(self) -> int:
        if self.staleness is not None:
            return self.staleness
        if self.scheme == "nolock":
            return max(1, self.workers)
        return 1


ParallelismSpec = "PureUDAParallelism | SharedMemoryParallelism | None"


# ---------------------------------------------------------------------------
# Shared-memory epoch simulation
# ---------------------------------------------------------------------------
def partition_round_robin(num_items: int, workers: int) -> list[list[int]]:
    """Round-robin assignment of item ordinals to workers (segment layout)."""
    partitions: list[list[int]] = [[] for _ in range(workers)]
    for index in range(num_items):
        partitions[index % workers].append(index)
    return partitions


def run_shared_memory_epoch(
    examples: Sequence[Any] | Table,
    task: Task,
    model: Model,
    step_size: StepSizeSchedule | float | dict,
    *,
    spec: SharedMemoryParallelism,
    epoch: int = 0,
    step_offset: int = 0,
    proximal: ProximalOperator | None = None,
    arena: SharedMemoryArena | None = None,
    segment_name: str = "bismarck_model",
    charge_per_tuple=None,
) -> tuple[Model, int]:
    """Run one epoch of shared-memory parallel IGD.

    ``examples`` is either a Table (rows are converted through the task) or a
    sequence of already-converted examples.  Returns the updated model and the
    number of gradient steps taken.

    ``charge_per_tuple`` is an optional zero-argument callable invoked once per
    tuple as it is read: the engine's per-tuple scan cost still applies to the
    shared-memory UDA (the workers scan tuples through the engine), only the
    model-passing cost is avoided because the model lives in shared memory.
    """
    schedule = make_schedule(step_size)
    proximal = proximal if proximal is not None else task.proximal or IdentityProximal()
    if isinstance(examples, Table):
        materialized = []
        for row in examples.scan():
            if charge_per_tuple is not None:
                charge_per_tuple()
            materialized.append(task.example_from_row(row))
    else:
        materialized = []
        for item in examples:
            if charge_per_tuple is not None:
                charge_per_tuple()
            materialized.append(task.example_from_row(item) if isinstance(item, Row) else item)
    num_examples = len(materialized)
    if num_examples == 0:
        return model, 0

    workers = min(spec.workers, num_examples)
    staleness = spec.effective_staleness()
    partitions = partition_round_robin(num_examples, workers)

    # The shared model lives in the arena as a flat vector, as it would in a
    # real shared-memory segment.
    arena = arena or SharedMemoryArena()
    if arena.exists(segment_name):
        arena.free(segment_name)
    segment = arena.allocate_from(segment_name, model.as_flat_vector())

    cursors = [0] * workers
    steps_taken = 0
    total_steps_planned = num_examples
    # Scratch model reused for snapshot-based local computation.
    scratch = model.copy()

    while steps_taken < total_steps_planned:
        progressed = False
        for worker in range(workers):
            partition = partitions[worker]
            cursor = cursors[worker]
            if cursor >= len(partition):
                continue
            batch = partition[cursor:cursor + staleness]
            cursors[worker] = cursor + len(batch)
            progressed = True

            snapshot = segment.snapshot()
            scratch.load_flat_vector(snapshot)
            for offset, example_index in enumerate(batch):
                step_index = step_offset + steps_taken + offset
                alpha = schedule.step_size(step_index, epoch)
                task.gradient_step(scratch, materialized[example_index], alpha)
                proximal.apply(scratch, alpha)
            delta = scratch.as_flat_vector() - snapshot
            steps_taken += len(batch)

            if spec.scheme == "lock":
                with segment.lock() as shared:
                    shared += delta
            elif spec.scheme == "aig":
                nonzero = np.nonzero(delta)[0]
                for index in nonzero:
                    segment.atomic_add(int(index), float(delta[index]))
            else:  # nolock
                nonzero = np.nonzero(delta)[0]
                segment.unsynchronised_add(nonzero, delta[nonzero])
        if not progressed:
            break

    model.load_flat_vector(segment.array)
    arena.free(segment_name)
    return model, steps_taken


# ---------------------------------------------------------------------------
# Analytic speed-up model (Figure 9B)
# ---------------------------------------------------------------------------
def modeled_epoch_seconds(
    serial_seconds: float,
    scheme: str,
    workers: int,
    *,
    model_passing_cost: float = 0.0,
    model_parameters: int = 1,
) -> float:
    """Wall-clock model of one parallel epoch, calibrated by the serial time.

    * ``lock``     — every update serialises on the model lock, so the gradient
      work cannot overlap: no speed-up (plus a small lock-handling overhead).
    * ``aig``      — near-linear scaling with a per-worker penalty for the
      per-component atomic operations.
    * ``nolock``   — near-linear scaling with a tiny cache-coherence penalty.
    * ``pure_uda`` — linear scaling of the scan, plus a per-segment model
      serialisation/merge cost proportional to the model size (this is what
      makes the pure UDA slow on engines with expensive model passing).
    """
    if serial_seconds < 0:
        raise ValueError("serial_seconds must be non-negative")
    if workers <= 0:
        raise ValueError("workers must be positive")
    if workers == 1:
        return serial_seconds

    if scheme == "lock":
        return serial_seconds * (1.0 + 0.02 * (workers - 1))
    if scheme == "aig":
        return serial_seconds / workers * (1.0 + 0.10 * (workers - 1) / workers) \
            + 0.01 * serial_seconds
    if scheme == "nolock":
        return serial_seconds / workers * (1.0 + 0.03 * (workers - 1) / workers)
    if scheme == "pure_uda":
        merge_cost = model_passing_cost * workers * max(model_parameters, 1) * 1e-7
        return serial_seconds / workers * (1.0 + 0.05) + merge_cost + 0.05 * serial_seconds / workers * (workers - 1) ** 0.5
    raise ValueError(f"unknown scheme {scheme!r}")


def modeled_speedup(
    serial_seconds: float,
    scheme: str,
    workers: int,
    *,
    model_passing_cost: float = 0.0,
    model_parameters: int = 1,
) -> float:
    """Speed-up of the per-epoch gradient computation over the serial run."""
    parallel_seconds = modeled_epoch_seconds(
        serial_seconds,
        scheme,
        workers,
        model_passing_cost=model_passing_cost,
        model_parameters=model_parameters,
    )
    if parallel_seconds <= 0:
        return float(workers)
    return serial_seconds / parallel_seconds
