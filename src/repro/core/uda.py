"""The Bismarck IGD user-defined aggregate.

This is the central piece of the paper's architecture: incremental gradient
descent expressed through the standard UDA contract.

* ``initialize``  — load the model (zeros on the first epoch, the previous
  epoch's model afterwards);
* ``transition``  — convert the tuple into an example, take one gradient step
  with the scheduled step size, apply the proximal operator;
* ``merge``       — average models trained on different data segments
  (the Zinkevich-style shared-nothing parallelisation);
* ``terminate``   — return the model, annotated with step counts.

The aggregate is task-agnostic: all task-specific logic lives in the
:class:`~repro.tasks.base.Task` passed in, exactly as Figure 4 of the paper
shows for the C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..db.aggregates import UserDefinedAggregate
from ..db.errors import ExecutionError
from ..db.types import Row
from ..tasks.base import ExampleBatch, Task
from .model import Model
from .proximal import ProximalOperator
from .stepsize import StepSizeSchedule, make_schedule


@dataclass
class IGDState:
    """Aggregation state carried through one epoch of the IGD aggregate."""

    model: Model
    gradient_steps: int = 0
    #: Gradient-step index of the first step taken by this aggregate run;
    #: lets diminishing step-size schedules continue across epochs.
    step_offset: int = 0
    epoch: int = 0


class IGDAggregate(UserDefinedAggregate):
    """One epoch of incremental gradient descent as a user-defined aggregate."""

    wants_row = True
    supports_merge = True
    # The UDA state carries the whole model across the engine's function-call
    # boundary on every transition; engines with expensive model passing (the
    # paper's DBMS A) therefore charge extra per tuple for this aggregate.
    state_passing_units = 1.0

    def __init__(
        self,
        task: Task,
        step_size: StepSizeSchedule | float | dict = 0.1,
        *,
        initial_model: Model | None = None,
        proximal: ProximalOperator | None = None,
        epoch: int = 0,
        step_offset: int = 0,
        batch_size: int = 1,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.task = task
        self.schedule = make_schedule(step_size)
        self.initial_model = initial_model
        self.proximal = proximal if proximal is not None else task.proximal
        self.epoch = epoch
        self.step_offset = step_offset
        #: Mini-batch size for the chunked path.  1 (the default) runs exact
        #: IGD — one gradient step per tuple, bit-for-bit the per-tuple path.
        #: B > 1 takes one averaged-gradient step per B examples (mini-batch
        #: SGD), which only the chunked path implements.
        self.batch_size = batch_size

    @property
    def supports_chunks(self) -> bool:
        return self.task.supports_batches

    @property
    def chunk_decoder(self) -> Task:
        return self.task

    # ---------------------------------------------------------- UDA contract
    def initialize(self) -> IGDState:
        if self.initial_model is not None:
            model = self.initial_model.copy()
        else:
            model = self.task.initial_model()
        return IGDState(
            model=model, gradient_steps=0, step_offset=self.step_offset, epoch=self.epoch
        )

    def transition(self, state: IGDState, row: Row | Any) -> IGDState:
        if self.batch_size > 1:
            raise ExecutionError(
                "mini-batch IGD (batch_size > 1) requires the chunked execution "
                "path; run with execution='chunked' on a batchable task/table"
            )
        example = self._to_example(row)
        step_index = state.step_offset + state.gradient_steps
        alpha = self.schedule.step_size(step_index, state.epoch)
        self.task.gradient_step(state.model, example, alpha)
        self.proximal.apply(state.model, alpha)
        state.gradient_steps += 1
        return state

    def transition_chunk(self, state: IGDState, batch: ExampleBatch) -> IGDState:
        """One chunk of gradient steps over cached, pre-decoded examples.

        With ``batch_size == 1`` this runs the task's sequential exact-IGD
        kernel with a precomputed per-step ``alpha`` array — bit-for-bit the
        models the per-tuple path produces.  With ``batch_size == B > 1`` it
        takes one averaged-gradient step per B consecutive examples
        (mini-batches never straddle chunk boundaries; a chunk's tail batch
        may be short).
        """
        n = len(batch)
        if n == 0:
            return state
        if self.batch_size == 1:
            start_index = state.step_offset + state.gradient_steps
            alphas = self.schedule.step_sizes(start_index, n, state.epoch)
            self.task.igd_chunk(state.model, batch, alphas, self.proximal)
            state.gradient_steps += n
            return state
        for start in range(0, n, self.batch_size):
            stop = min(start + self.batch_size, n)
            step_index = state.step_offset + state.gradient_steps
            alpha = self.schedule.step_size(step_index, state.epoch)
            self.task.minibatch_step(state.model, batch, start, stop, alpha)
            self.proximal.apply(state.model, alpha)
            state.gradient_steps += 1
        return state

    def merge(self, state_a: IGDState, state_b: IGDState) -> IGDState:
        """Model averaging, weighted by the number of gradient steps taken.

        Averaging partially trained models is the "essentially algebraic"
        property the paper leans on to reuse the shared-nothing parallel UDA
        machinery (Section 3.3, citing Zinkevich et al.).
        """
        total_steps = state_a.gradient_steps + state_b.gradient_steps
        if total_steps == 0:
            weights = [1.0, 1.0]
        else:
            weights = [state_a.gradient_steps, state_b.gradient_steps]
        merged_model = Model.average([state_a.model, state_b.model], weights=weights)
        return IGDState(
            model=merged_model,
            gradient_steps=total_steps,
            step_offset=min(state_a.step_offset, state_b.step_offset),
            epoch=state_a.epoch,
        )

    def terminate(self, state: IGDState) -> Model:
        model = state.model
        model.metadata["gradient_steps"] = state.step_offset + state.gradient_steps
        model.metadata["epoch"] = state.epoch
        return model

    # -------------------------------------------------------------- internals
    def _to_example(self, row: Row | Any) -> Any:
        """Rows coming from the engine are converted; raw examples pass through."""
        if isinstance(row, Row):
            return self.task.example_from_row(row)
        return row

    def for_epoch(self, epoch: int, model: Model, step_offset: int) -> "IGDAggregate":
        """A fresh aggregate configured to continue training at ``epoch``."""
        return IGDAggregate(
            self.task,
            self.schedule,
            initial_model=model,
            proximal=self.proximal,
            epoch=epoch,
            step_offset=step_offset,
            batch_size=self.batch_size,
        )


class LossAggregate(UserDefinedAggregate):
    """A UDA computing the data term of the objective for a fixed model.

    The paper notes the loss needed by the stopping condition "can also be
    implemented as a UDA (or piggybacked onto the IGD UDA)"; this is that UDA.
    """

    wants_row = True
    supports_merge = True
    # Scalar reduction: whole chunks may be dealt to parallel workers and the
    # (total, count) partials merged exactly, left-to-right.
    chunk_partitionable = True

    def __init__(self, task: Task, model: Model):
        self.task = task
        self.model = model

    @property
    def supports_chunks(self) -> bool:
        return self.task.supports_batches

    @property
    def chunk_decoder(self) -> Task:
        return self.task

    def initialize(self) -> tuple[float, int]:
        return (0.0, 0)

    def transition(self, state: tuple[float, int], row: Row | Any) -> tuple[float, int]:
        example = row if not isinstance(row, Row) else self.task.example_from_row(row)
        total, count = state
        return (total + self.task.loss(self.model, example), count + 1)

    def transition_chunk(self, state: tuple[float, int], batch: ExampleBatch) -> tuple[float, int]:
        total, count = state
        return (total + self.task.batch_loss(self.model, batch), count + len(batch))

    def merge(self, state_a: tuple[float, int], state_b: tuple[float, int]) -> tuple[float, int]:
        return (state_a[0] + state_b[0], state_a[1] + state_b[1])

    def terminate(self, state: tuple[float, int]) -> float:
        total, _ = state
        return total


class AccuracyAggregate(UserDefinedAggregate):
    """A UDA computing classification accuracy of a fixed model (error rates).

    Mirrors the paper's remark that the UDA mechanism is also used "to test for
    convergence and compute information, e.g., error rates".  Only meaningful
    for tasks exposing ``classify``.
    """

    wants_row = True
    supports_merge = True
    # Integer-counter reduction: chunk partitioning is not just reproducible
    # but exactly equal to any serial order (integer sums are associative).
    chunk_partitionable = True

    def __init__(self, task: Task, model: Model):
        if not hasattr(task, "classify"):
            raise TypeError(f"task {task.describe()} does not support classification")
        self.task = task
        self.model = model

    @property
    def supports_chunks(self) -> bool:
        return self.task.supports_batches

    @property
    def chunk_decoder(self) -> Task:
        return self.task

    def initialize(self) -> tuple[int, int]:
        return (0, 0)

    def transition(self, state: tuple[int, int], row: Row | Any) -> tuple[int, int]:
        example = row if not isinstance(row, Row) else self.task.example_from_row(row)
        correct, total = state
        predicted = self.task.classify(self.model, example)  # type: ignore[attr-defined]
        if predicted == (1 if example.label > 0 else -1):
            correct += 1
        return (correct, total + 1)

    def transition_chunk(self, state: tuple[int, int], batch: ExampleBatch) -> tuple[int, int]:
        correct, total = state
        return (correct + self.task.batch_correct(self.model, batch), total + len(batch))

    def merge(self, state_a: tuple[int, int], state_b: tuple[int, int]) -> tuple[int, int]:
        return (state_a[0] + state_b[0], state_a[1] + state_b[1])

    def terminate(self, state: tuple[int, int]) -> float:
        correct, total = state
        if total == 0:
            return 0.0
        return correct / total
