"""Data-ordering policies: Clustered, ShuffleOnce, ShuffleAlways (Section 3.2).

IGD converges for any data order on convex problems, but clustered orders
(e.g. all positive examples before all negative ones — the CA-TX example) can
be pathologically slow.  The paper's remedy is to shuffle the data **once**
before the first epoch: nearly the per-epoch convergence rate of shuffling
every epoch, without paying the shuffle cost each time.

The shuffle policies support two modes:

* ``mode="logical"`` (the default) — the policy produces a *permutation* over
  a stable table version instead of rewriting the heap.  The driver feeds the
  permutation to the execution backends as an explicit row order, which the
  chunk plane serves by gathering from its cached decoded examples.  Because
  the table is never mutated, the example cache survives re-shuffles:
  shuffle-always stops re-decoding every epoch.
* ``mode="physical"`` — the original behaviour: the policy physically
  reorders the heap table (the analogue of materialising ``ORDER BY
  RANDOM()``), so its wall-clock cost is real and shows up in the epoch
  timings.  The engine-overhead and Figure 8 experiments use this mode, since
  the physical shuffle cost is exactly what they measure.

In both modes ``shuffle_seconds`` / ``shuffle_count`` accumulate the time and
number of reorder events (physical rewrites, or permutation generations in
logical mode — segmented runs generate one permutation per segment).
"""

from __future__ import annotations

import time

import numpy as np

from ..db.table import Table

ORDERING_MODES = ("physical", "logical")


class OrderingPolicy:
    """Decides how the data is ordered before / between epochs."""

    #: Machine-readable policy name (used by configs and reports).
    name: str = "ordering"

    def __init__(self, mode: str = "physical") -> None:
        if mode not in ORDERING_MODES:
            raise ValueError(
                f"unknown ordering mode {mode!r}; expected one of {ORDERING_MODES}"
            )
        self.mode = mode
        #: Total wall-clock seconds spent reordering data, accumulated across
        #: the run; the driver folds this into epoch timings but experiments
        #: can also report it separately.
        self.shuffle_seconds: float = 0.0
        #: Number of reorder events (physical shuffles or, in logical mode,
        #: permutation generations).
        self.shuffle_count: int = 0

    @property
    def logical(self) -> bool:
        return self.mode == "logical"

    def prepare(self, table: Table, rng: np.random.Generator) -> None:
        """Called once before the first epoch."""

    def before_epoch(self, table: Table, epoch: int, rng: np.random.Generator) -> None:
        """Called before every epoch (including the first)."""

    def epoch_row_order(
        self, num_rows: int, epoch: int, rng: np.random.Generator, *, partition: int = 0
    ) -> np.ndarray | None:
        """Logical visit order for this epoch; ``None`` means physical order.

        Serial and shared-memory backends ask with the table's length; the
        segmented backend asks once per segment, passing the segment index as
        ``partition`` so that equal-length segments still draw *independent*
        permutations (like independent segment-local ``ORDER BY RANDOM()``
        runs).  Repeated calls with the same (epoch, partition, row count)
        return the same order.  Physical-mode policies always return
        ``None``: the heap itself carries the order.
        """
        return None

    def _timed_shuffle(self, table: Table, rng: np.random.Generator) -> None:
        start = time.perf_counter()
        table.shuffle(rng)
        self.shuffle_seconds += time.perf_counter() - start
        self.shuffle_count += 1

    def _timed_permutation(self, num_rows: int, rng: np.random.Generator) -> np.ndarray:
        start = time.perf_counter()
        permutation = rng.permutation(num_rows)
        self.shuffle_seconds += time.perf_counter() - start
        self.shuffle_count += 1
        return permutation

    def describe(self) -> str:
        return self.name


class ClusteredOrder(OrderingPolicy):
    """Use the data exactly as stored (possibly clustered by an attribute).

    If ``cluster_column`` is given the table is physically clustered on it
    during :meth:`prepare`, reproducing the "data clustered by class label"
    scenario of the CA-TX example.  Clustering is inherently a physical
    rewrite (and happens at most once per run, so the example cache rebuilds
    at most once); the policy has no logical mode, but accepts
    ``mode="physical"`` so callers can forward a uniform ``mode`` kwarg
    through :func:`make_ordering`.
    """

    name = "clustered"

    def __init__(
        self,
        cluster_column: str | None = None,
        *,
        descending: bool = False,
        mode: str = "physical",
    ):
        if mode != "physical":
            raise ValueError(
                "clustered ordering is a physical rewrite by definition; "
                f"mode {mode!r} is not supported"
            )
        super().__init__(mode)
        self.cluster_column = cluster_column
        self.descending = descending

    def prepare(self, table: Table, rng: np.random.Generator) -> None:
        if self.cluster_column is not None:
            table.cluster_by(self.cluster_column, descending=self.descending)


class ShuffleOnce(OrderingPolicy):
    """Shuffle the data once, before the first epoch (the paper's remedy).

    In logical mode (the default) one permutation per row count is generated
    lazily on first use and then reused by every epoch, so the cached chunk
    plane decodes the table exactly once per training run and serves every
    epoch with the same gathered order.
    """

    name = "shuffle_once"

    def __init__(self, mode: str = "logical"):
        super().__init__(mode)
        self._permutations: dict[tuple[int, int], np.ndarray] = {}

    def prepare(self, table: Table, rng: np.random.Generator) -> None:
        if self.logical:
            # A reused policy object starts each training run with fresh
            # permutations, mirroring how physical mode reshuffles the heap.
            self._permutations.clear()
        else:
            self._timed_shuffle(table, rng)

    def epoch_row_order(
        self, num_rows: int, epoch: int, rng: np.random.Generator, *, partition: int = 0
    ) -> np.ndarray | None:
        if not self.logical:
            return None
        key = (partition, num_rows)
        if key not in self._permutations:
            self._permutations[key] = self._timed_permutation(num_rows, rng)
        return self._permutations[key]


class ShuffleAlways(OrderingPolicy):
    """Shuffle the data before every epoch (the machine-learning default).

    In logical mode (the default) each epoch gets a fresh permutation over
    the *stable* table version: the heap is never rewritten, so the example
    cache survives every re-shuffle and no epoch re-decodes a single tuple.
    """

    name = "shuffle_always"

    def __init__(self, mode: str = "logical"):
        super().__init__(mode)
        self._epoch: int | None = None
        self._permutations: dict[tuple[int, int], np.ndarray] = {}

    def prepare(self, table: Table, rng: np.random.Generator) -> None:
        if self.logical:
            self._epoch = None
            self._permutations = {}

    def before_epoch(self, table: Table, epoch: int, rng: np.random.Generator) -> None:
        if not self.logical:
            self._timed_shuffle(table, rng)

    def epoch_row_order(
        self, num_rows: int, epoch: int, rng: np.random.Generator, *, partition: int = 0
    ) -> np.ndarray | None:
        if not self.logical:
            return None
        if epoch != self._epoch:
            self._epoch = epoch
            self._permutations = {}
        key = (partition, num_rows)
        if key not in self._permutations:
            self._permutations[key] = self._timed_permutation(num_rows, rng)
        return self._permutations[key]


_POLICIES = {
    "clustered": ClusteredOrder,
    "shuffle_once": ShuffleOnce,
    "shuffle_always": ShuffleAlways,
}


def make_ordering(spec: "OrderingPolicy | str | None", **kwargs) -> OrderingPolicy:
    """Coerce a policy name (or an existing policy) into an OrderingPolicy.

    Keyword arguments are forwarded to the policy constructor, e.g.
    ``make_ordering("shuffle_always", mode="physical")``.
    """
    if spec is None:
        return ShuffleOnce(**kwargs)
    if isinstance(spec, OrderingPolicy):
        return spec
    try:
        cls = _POLICIES[spec.lower()]
    except KeyError:
        raise ValueError(
            f"unknown ordering policy {spec!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return cls(**kwargs)


def ordering_names() -> list[str]:
    return sorted(_POLICIES)
