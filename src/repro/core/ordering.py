"""Data-ordering policies: Clustered, ShuffleOnce, ShuffleAlways (Section 3.2).

IGD converges for any data order on convex problems, but clustered orders
(e.g. all positive examples before all negative ones — the CA-TX example) can
be pathologically slow.  The paper's remedy is to shuffle the data **once**
before the first epoch: nearly the per-epoch convergence rate of shuffling
every epoch, without paying the shuffle cost each time.

Policies physically reorder the heap table (the analogue of materialising
``ORDER BY RANDOM()``), so their wall-clock cost is real and shows up in the
epoch timings the experiments report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..db.table import Table


class OrderingPolicy:
    """Decides how the data is physically ordered before / between epochs."""

    #: Machine-readable policy name (used by configs and reports).
    name: str = "ordering"

    def __init__(self) -> None:
        #: Total wall-clock seconds spent reordering data, accumulated across
        #: the run; the driver folds this into epoch timings but experiments
        #: can also report it separately.
        self.shuffle_seconds: float = 0.0
        #: Number of physical shuffles performed.
        self.shuffle_count: int = 0

    def prepare(self, table: Table, rng: np.random.Generator) -> None:
        """Called once before the first epoch."""

    def before_epoch(self, table: Table, epoch: int, rng: np.random.Generator) -> None:
        """Called before every epoch (including the first)."""

    def _timed_shuffle(self, table: Table, rng: np.random.Generator) -> None:
        start = time.perf_counter()
        table.shuffle(rng)
        self.shuffle_seconds += time.perf_counter() - start
        self.shuffle_count += 1

    def describe(self) -> str:
        return self.name


class ClusteredOrder(OrderingPolicy):
    """Use the data exactly as stored (possibly clustered by an attribute).

    If ``cluster_column`` is given the table is physically clustered on it
    during :meth:`prepare`, reproducing the "data clustered by class label"
    scenario of the CA-TX example.
    """

    name = "clustered"

    def __init__(self, cluster_column: str | None = None, *, descending: bool = False):
        super().__init__()
        self.cluster_column = cluster_column
        self.descending = descending

    def prepare(self, table: Table, rng: np.random.Generator) -> None:
        if self.cluster_column is not None:
            table.cluster_by(self.cluster_column, descending=self.descending)


class ShuffleOnce(OrderingPolicy):
    """Shuffle the table once, before the first epoch (the paper's remedy)."""

    name = "shuffle_once"

    def prepare(self, table: Table, rng: np.random.Generator) -> None:
        self._timed_shuffle(table, rng)


class ShuffleAlways(OrderingPolicy):
    """Shuffle the table before every epoch (the machine-learning default)."""

    name = "shuffle_always"

    def before_epoch(self, table: Table, epoch: int, rng: np.random.Generator) -> None:
        self._timed_shuffle(table, rng)


_POLICIES = {
    "clustered": ClusteredOrder,
    "shuffle_once": ShuffleOnce,
    "shuffle_always": ShuffleAlways,
}


def make_ordering(spec: "OrderingPolicy | str | None", **kwargs) -> OrderingPolicy:
    """Coerce a policy name (or an existing policy) into an OrderingPolicy."""
    if spec is None:
        return ShuffleOnce()
    if isinstance(spec, OrderingPolicy):
        return spec
    try:
        cls = _POLICIES[spec.lower()]
    except KeyError:
        raise ValueError(
            f"unknown ordering policy {spec!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return cls(**kwargs)


def ordering_names() -> list[str]:
    return sorted(_POLICIES)
