"""Asset-return samples for the portfolio-optimisation task."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tasks.portfolio import ReturnSample


@dataclass(frozen=True)
class PortfolioDataset:
    """Sampled asset returns plus the generating moments."""

    examples: list[ReturnSample]
    expected_returns: np.ndarray
    covariance: np.ndarray
    name: str = "portfolio_returns"

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def num_assets(self) -> int:
        return self.expected_returns.shape[0]

    def sample_mean(self) -> np.ndarray:
        return np.mean([example.returns for example in self.examples], axis=0)

    def sample_covariance(self) -> np.ndarray:
        stacked = np.stack([example.returns for example in self.examples])
        return np.cov(stacked, rowvar=False, bias=True)


def make_portfolio_returns(
    num_assets: int = 8,
    num_samples: int = 500,
    *,
    mean_scale: float = 0.05,
    volatility: float = 0.1,
    correlation: float = 0.3,
    seed: int | None = 0,
) -> PortfolioDataset:
    """Correlated Gaussian return samples with asset-specific expected returns."""
    if num_assets <= 1:
        raise ValueError("need at least two assets")
    if num_samples <= 1:
        raise ValueError("need at least two samples")
    if not 0 <= correlation < 1:
        raise ValueError("correlation must be in [0, 1)")
    rng = np.random.default_rng(seed)
    expected = mean_scale * rng.uniform(0.2, 1.0, size=num_assets)
    base_volatility = volatility * rng.uniform(0.5, 1.5, size=num_assets)
    covariance = np.outer(base_volatility, base_volatility) * correlation
    np.fill_diagonal(covariance, base_volatility ** 2)
    samples = rng.multivariate_normal(expected, covariance, size=num_samples)
    examples = [ReturnSample(returns=np.asarray(row)) for row in samples]
    return PortfolioDataset(examples=examples, expected_returns=expected, covariance=covariance)
