"""Load generated datasets into database tables.

The loaders reproduce the table layouts the paper's tools expect, e.g.
``LabeledPapers(id, vec, label)`` for classification, a ``(row_id, col_id,
rating)`` triple table for LMF, and TEXT-encoded sequences for the CRF.
"""

from __future__ import annotations

from typing import Iterable

from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..db.table import Table
from ..db.types import ColumnType, Schema
from ..tasks.base import SupervisedExample
from ..tasks.crf import SequenceExample
from ..tasks.kalman import ObservationExample
from ..tasks.matrix_factorization import RatingExample
from ..tasks.portfolio import ReturnSample
from .sequences import encode_sequence_for_storage


def _register(database: Database | SegmentedDatabase, table: Table, replace: bool) -> Table:
    if isinstance(database, SegmentedDatabase):
        if replace and database.master.has_table(table.name):
            database.master.drop_table(table.name)
        database.load_table(table, replace=replace)
    else:
        if replace and database.has_table(table.name):
            database.drop_table(table.name)
        database.register_table(table, replace=replace)
    return table


def load_classification_table(
    database: Database | SegmentedDatabase,
    name: str,
    examples: Iterable[SupervisedExample],
    *,
    sparse: bool = False,
    replace: bool = False,
    feature_column: str = "vec",
    label_column: str = "label",
) -> Table:
    """Load (id, vec, label) rows — the LabeledPapers layout from Section 2.1."""
    feature_type = ColumnType.SPARSE_VECTOR if sparse else ColumnType.FLOAT_ARRAY
    schema = Schema.of(
        ("id", ColumnType.INTEGER),
        (feature_column, feature_type),
        (label_column, ColumnType.FLOAT),
    )
    table = Table(name, schema)
    table.insert_many((i, example.features, example.label) for i, example in enumerate(examples))
    return _register(database, table, replace)


def load_catx_table(
    database: Database | SegmentedDatabase,
    name: str,
    examples: Iterable[SupervisedExample],
    *,
    replace: bool = False,
) -> Table:
    """Load the 1-D CA-TX dataset as (id, x, y)."""
    schema = Schema.of(
        ("id", ColumnType.INTEGER), ("x", ColumnType.FLOAT), ("y", ColumnType.FLOAT)
    )
    table = Table(name, schema)
    table.insert_many(
        (i, float(example.features), example.label) for i, example in enumerate(examples)
    )
    return _register(database, table, replace)


def load_ratings_table(
    database: Database | SegmentedDatabase,
    name: str,
    examples: Iterable[RatingExample],
    *,
    replace: bool = False,
) -> Table:
    """Load observed matrix entries as (row_id, col_id, rating)."""
    schema = Schema.of(
        ("row_id", ColumnType.INTEGER),
        ("col_id", ColumnType.INTEGER),
        ("rating", ColumnType.FLOAT),
    )
    table = Table(name, schema)
    table.insert_many((example.row, example.col, example.value) for example in examples)
    return _register(database, table, replace)


def load_sequences_table(
    database: Database | SegmentedDatabase,
    name: str,
    examples: Iterable[SequenceExample],
    *,
    replace: bool = False,
) -> Table:
    """Load token sequences as (id, tokens TEXT, labels TEXT)."""
    schema = Schema.of(
        ("id", ColumnType.INTEGER),
        ("tokens", ColumnType.TEXT),
        ("labels", ColumnType.TEXT),
    )
    table = Table(name, schema)
    table.insert_many(
        (i, *encode_sequence_for_storage(example)) for i, example in enumerate(examples)
    )
    return _register(database, table, replace)


def load_timeseries_table(
    database: Database | SegmentedDatabase,
    name: str,
    examples: Iterable[ObservationExample],
    *,
    replace: bool = False,
) -> Table:
    """Load observations as (t, y FLOAT_ARRAY)."""
    schema = Schema.of(("t", ColumnType.INTEGER), ("y", ColumnType.FLOAT_ARRAY))
    table = Table(name, schema)
    table.insert_many((example.time_index, example.observation) for example in examples)
    return _register(database, table, replace)


def load_returns_table(
    database: Database | SegmentedDatabase,
    name: str,
    examples: Iterable[ReturnSample],
    *,
    replace: bool = False,
) -> Table:
    """Load asset return samples as (id, returns FLOAT_ARRAY)."""
    schema = Schema.of(("id", ColumnType.INTEGER), ("returns", ColumnType.FLOAT_ARRAY))
    table = Table(name, schema)
    table.insert_many((i, example.returns) for i, example in enumerate(examples))
    return _register(database, table, replace)
