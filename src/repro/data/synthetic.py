"""Synthetic classification datasets standing in for Forest and DBLife.

The paper's dense benchmark (Forest CoverType: 581k examples x 54 features)
and sparse benchmark (DBLife: 16k examples x 41k features) are replaced by
generators that reproduce their *shape* at laptop scale: a dense
low-dimensional linearly-separable-ish problem and a sparse high-dimensional
one, both binarised to labels in {-1, +1}, optionally stored clustered by
label (the pathological in-RDBMS ordering the paper studies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tasks.base import SupervisedExample


@dataclass(frozen=True)
class ClassificationDataset:
    """A generated classification dataset plus its generation metadata."""

    examples: list[SupervisedExample]
    dimension: int
    sparse: bool
    name: str = "synthetic"

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def num_positive(self) -> int:
        return sum(1 for example in self.examples if example.label > 0)

    @property
    def num_negative(self) -> int:
        return len(self.examples) - self.num_positive

    def clustered_by_label(self) -> "ClassificationDataset":
        """A copy whose examples are sorted by label (positives first)."""
        ordered = sorted(self.examples, key=lambda example: -example.label)
        return ClassificationDataset(
            examples=ordered, dimension=self.dimension, sparse=self.sparse, name=self.name
        )

    def shuffled(self, seed: int | None = 0) -> "ClassificationDataset":
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(len(self.examples))
        return ClassificationDataset(
            examples=[self.examples[i] for i in permutation],
            dimension=self.dimension,
            sparse=self.sparse,
            name=self.name,
        )

    def approximate_bytes(self) -> int:
        """Rough on-disk size estimate (for the Table-1 style statistics)."""
        if self.sparse:
            nnz = sum(
                len(example.features) for example in self.examples
            )
            return nnz * 12 + len(self.examples) * 8
        return len(self.examples) * (self.dimension * 8 + 8)


def make_dense_classification(
    num_examples: int = 2000,
    dimension: int = 54,
    *,
    separation: float = 1.5,
    noise: float = 1.0,
    seed: int | None = 0,
    name: str = "forest_like",
) -> ClassificationDataset:
    """Dense, low-dimensional binary classification (Forest CoverType analogue).

    Two Gaussian clouds separated along a random direction; labels in {-1, +1}.
    """
    if num_examples <= 1:
        raise ValueError("need at least two examples")
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    rng = np.random.default_rng(seed)
    direction = rng.normal(size=dimension)
    direction /= np.linalg.norm(direction)
    examples: list[SupervisedExample] = []
    for i in range(num_examples):
        label = 1.0 if i % 2 == 0 else -1.0
        center = separation * label * direction
        features = center + noise * rng.normal(size=dimension)
        examples.append(SupervisedExample(features, label))
    dataset = ClassificationDataset(
        examples=examples, dimension=dimension, sparse=False, name=name
    )
    return dataset.shuffled(seed)


def make_sparse_classification(
    num_examples: int = 1000,
    dimension: int = 5000,
    *,
    nonzeros_per_example: int = 20,
    common_features: int = 5,
    separation: float = 1.0,
    seed: int | None = 0,
    name: str = "dblife_like",
) -> ClassificationDataset:
    """Sparse, high-dimensional binary classification (DBLife analogue).

    Each example activates a small random subset of features; a hidden weight
    vector determines the label, so the problem is learnable but not trivially
    separable.  Features are stored as index->value mappings (the sparse-vector
    format of the paper's datasets).

    ``common_features`` features (indices 0..common_features-1) fire in every
    example, like stop-word features in a bag-of-words corpus.  They are what
    makes a label-clustered storage order pathological for IGD: during the
    positive block those weights are dragged one way, during the negative
    block the other — the high-dimensional analogue of the CA-TX example.
    """
    if num_examples <= 1:
        raise ValueError("need at least two examples")
    if nonzeros_per_example <= 0 or nonzeros_per_example > dimension:
        raise ValueError("nonzeros_per_example must be in [1, dimension]")
    if not 0 <= common_features < dimension:
        raise ValueError("common_features must be in [0, dimension)")
    rng = np.random.default_rng(seed)
    hidden = rng.normal(size=dimension)
    hidden[:common_features] = 0.0  # common features carry no label signal
    examples: list[SupervisedExample] = []
    rare_dimension = dimension - common_features
    for _ in range(num_examples):
        indices = common_features + rng.choice(
            rare_dimension, size=nonzeros_per_example, replace=False
        )
        values = rng.normal(loc=separation, scale=1.0, size=nonzeros_per_example)
        features = {int(index): float(value) for index, value in zip(indices, values)}
        for common in range(common_features):
            features[common] = 1.0
        score = sum(hidden[index] * value for index, value in features.items())
        noise = rng.normal(scale=0.5)
        label = 1.0 if score + noise > 0 else -1.0
        examples.append(SupervisedExample(features, label))
    return ClassificationDataset(
        examples=examples, dimension=dimension, sparse=True, name=name
    )


def make_scalability_classification(
    num_examples: int = 20000,
    dimension: int = 50,
    *,
    seed: int | None = 7,
    name: str = "classify_large",
) -> ClassificationDataset:
    """Scaled-down analogue of Classify300M (dense, 50 features).

    The paper's scalability dataset has 300M rows / 135GB; we keep its shape
    (dense, 50-dimensional, binary) at a size a laptop handles, and the
    scalability experiment reports per-epoch throughput instead of absolute
    hours.
    """
    return make_dense_classification(
        num_examples=num_examples,
        dimension=dimension,
        separation=1.0,
        noise=1.5,
        seed=seed,
        name=name,
    )
