"""Dataset generators and database loaders for the Bismarck reproduction."""

from .catx import CATXDataset, make_catx
from .loaders import (
    load_catx_table,
    load_classification_table,
    load_ratings_table,
    load_returns_table,
    load_sequences_table,
    load_timeseries_table,
)
from .portfolio_data import PortfolioDataset, make_portfolio_returns
from .ratings import RatingsDataset, make_large_ratings, make_ratings
from .sequences import (
    SequenceDataset,
    encode_sequence_for_storage,
    make_large_sequences,
    make_sequences,
)
from .statistics import (
    DatasetStatistics,
    classification_statistics,
    ratings_statistics,
    sequence_statistics,
)
from .synthetic import (
    ClassificationDataset,
    make_dense_classification,
    make_scalability_classification,
    make_sparse_classification,
)
from .timeseries import TimeSeriesDataset, make_noisy_timeseries

__all__ = [
    "CATXDataset",
    "ClassificationDataset",
    "DatasetStatistics",
    "PortfolioDataset",
    "RatingsDataset",
    "SequenceDataset",
    "TimeSeriesDataset",
    "classification_statistics",
    "encode_sequence_for_storage",
    "load_catx_table",
    "load_classification_table",
    "load_ratings_table",
    "load_returns_table",
    "load_sequences_table",
    "load_timeseries_table",
    "make_catx",
    "make_dense_classification",
    "make_large_ratings",
    "make_large_sequences",
    "make_noisy_timeseries",
    "make_portfolio_returns",
    "make_ratings",
    "make_scalability_classification",
    "make_sequences",
    "make_sparse_classification",
    "ratings_statistics",
    "sequence_statistics",
]
