"""Sparse rating matrices standing in for MovieLens and Matrix5B.

The MovieLens benchmark (6k users x 4k movies, 1M ratings) is replaced by a
generator producing a low-rank-plus-noise rating matrix observed on a sparse
random set of cells, which is exactly the structure the LMF task needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tasks.matrix_factorization import RatingExample


@dataclass(frozen=True)
class RatingsDataset:
    """Observed entries of a partially observed low-rank matrix."""

    examples: list[RatingExample]
    num_rows: int
    num_cols: int
    true_rank: int
    name: str = "movielens_like"

    def __len__(self) -> int:
        return len(self.examples)

    def density(self) -> float:
        return len(self.examples) / float(self.num_rows * self.num_cols)

    def clustered_by_row(self) -> "RatingsDataset":
        """Entries sorted by row index (how a ratings table is often stored)."""
        ordered = sorted(self.examples, key=lambda example: (example.row, example.col))
        return RatingsDataset(
            examples=ordered,
            num_rows=self.num_rows,
            num_cols=self.num_cols,
            true_rank=self.true_rank,
            name=self.name,
        )

    def shuffled(self, seed: int | None = 0) -> "RatingsDataset":
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(len(self.examples))
        return RatingsDataset(
            examples=[self.examples[i] for i in permutation],
            num_rows=self.num_rows,
            num_cols=self.num_cols,
            true_rank=self.true_rank,
            name=self.name,
        )

    def approximate_bytes(self) -> int:
        return len(self.examples) * 20


def make_ratings(
    num_rows: int = 300,
    num_cols: int = 200,
    num_ratings: int = 6000,
    *,
    rank: int = 5,
    noise: float = 0.1,
    seed: int | None = 0,
    name: str = "movielens_like",
) -> RatingsDataset:
    """Generate a rank-``rank`` matrix observed on ``num_ratings`` random cells."""
    if num_rows <= 1 or num_cols <= 1:
        raise ValueError("matrix dimensions must be at least 2x2")
    if num_ratings <= 0:
        raise ValueError("num_ratings must be positive")
    max_cells = num_rows * num_cols
    num_ratings = min(num_ratings, max_cells)
    rng = np.random.default_rng(seed)
    left = rng.normal(scale=1.0, size=(num_rows, rank))
    right = rng.normal(scale=1.0, size=(num_cols, rank))
    chosen = rng.choice(max_cells, size=num_ratings, replace=False)
    examples: list[RatingExample] = []
    for cell in chosen:
        row, col = divmod(int(cell), num_cols)
        value = float(np.dot(left[row], right[col]) + noise * rng.normal())
        examples.append(RatingExample(row=row, col=col, value=value))
    return RatingsDataset(
        examples=examples,
        num_rows=num_rows,
        num_cols=num_cols,
        true_rank=rank,
        name=name,
    )


def make_large_ratings(
    num_rows: int = 2000,
    num_cols: int = 2000,
    num_ratings: int = 40000,
    *,
    rank: int = 10,
    seed: int | None = 11,
) -> RatingsDataset:
    """Scaled-down analogue of Matrix5B for the scalability experiment."""
    return make_ratings(
        num_rows=num_rows,
        num_cols=num_cols,
        num_ratings=num_ratings,
        rank=rank,
        noise=0.2,
        seed=seed,
        name="matrix_large",
    )
