"""Noisy linear-dynamical-system time series for the Kalman-filter task."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tasks.kalman import ObservationExample


@dataclass(frozen=True)
class TimeSeriesDataset:
    """Observations from a linear dynamical system, plus the true states."""

    examples: list[ObservationExample]
    true_states: np.ndarray
    dynamics: np.ndarray
    observation_matrix: np.ndarray
    noise_scale: float
    name: str = "kalman_series"

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def num_steps(self) -> int:
        return self.true_states.shape[0]

    @property
    def state_dim(self) -> int:
        return self.true_states.shape[1]


def make_noisy_timeseries(
    num_steps: int = 100,
    state_dim: int = 2,
    *,
    noise_scale: float = 0.3,
    rotation: float = 0.05,
    seed: int | None = 0,
) -> TimeSeriesDataset:
    """A slowly rotating 2-D (or block-diagonal) system observed with noise."""
    if num_steps <= 1:
        raise ValueError("need at least two time steps")
    if state_dim <= 0:
        raise ValueError("state_dim must be positive")
    rng = np.random.default_rng(seed)

    # Block-diagonal rotation dynamics (identity for odd trailing dimension).
    dynamics = np.eye(state_dim)
    angle = rotation
    for block in range(state_dim // 2):
        c, s = np.cos(angle), np.sin(angle)
        i = 2 * block
        dynamics[i:i + 2, i:i + 2] = np.array([[c, -s], [s, c]])
    observation_matrix = np.eye(state_dim)

    states = np.zeros((num_steps, state_dim))
    states[0] = rng.normal(scale=1.0, size=state_dim)
    for t in range(1, num_steps):
        states[t] = dynamics @ states[t - 1] + 0.02 * rng.normal(size=state_dim)

    examples = []
    for t in range(num_steps):
        observation = observation_matrix @ states[t] + noise_scale * rng.normal(size=state_dim)
        examples.append(ObservationExample(time_index=t, observation=observation))
    return TimeSeriesDataset(
        examples=examples,
        true_states=states,
        dynamics=dynamics,
        observation_matrix=observation_matrix,
        noise_scale=noise_scale,
    )
