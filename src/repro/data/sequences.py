"""Token-sequence datasets standing in for CoNLL-2000 (text chunking) and DBLP.

The CRF benchmark in the paper labels token sequences (CoNLL text chunking:
~9k sentences, 7.4M features).  We generate sequences from a small hidden
Markov model: each hidden label emits a characteristic subset of sparse token
features plus a few noisy ones, and labels follow a sticky transition matrix —
the structure a linear-chain CRF is designed to recover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tasks.crf import SequenceExample


@dataclass(frozen=True)
class SequenceDataset:
    """A corpus of labelled token sequences plus its generation metadata."""

    examples: list[SequenceExample]
    num_features: int
    num_labels: int
    name: str = "conll_like"

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def num_tokens(self) -> int:
        return sum(len(example) for example in self.examples)

    def shuffled(self, seed: int | None = 0) -> "SequenceDataset":
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(len(self.examples))
        return SequenceDataset(
            examples=[self.examples[i] for i in permutation],
            num_features=self.num_features,
            num_labels=self.num_labels,
            name=self.name,
        )

    def approximate_bytes(self) -> int:
        return sum(
            sum(len(features) for features in example.token_features) * 8 + len(example) * 4
            for example in self.examples
        )


def make_sequences(
    num_sequences: int = 60,
    *,
    mean_length: int = 12,
    num_labels: int = 4,
    features_per_label: int = 8,
    noise_features: int = 20,
    stickiness: float = 0.7,
    seed: int | None = 0,
    name: str = "conll_like",
) -> SequenceDataset:
    """Generate labelled token sequences from a sticky HMM.

    The feature space is partitioned into ``num_labels`` blocks of
    ``features_per_label`` label-specific features plus ``noise_features``
    shared noise features; each token activates a couple of features from its
    gold label's block and one noise feature.
    """
    if num_sequences <= 0:
        raise ValueError("num_sequences must be positive")
    if num_labels <= 1:
        raise ValueError("need at least two labels")
    if not 0 <= stickiness < 1:
        raise ValueError("stickiness must be in [0, 1)")
    rng = np.random.default_rng(seed)
    num_features = num_labels * features_per_label + noise_features

    # Sticky transition matrix: stay with probability `stickiness`, otherwise
    # move uniformly to another label.
    transition = np.full((num_labels, num_labels), (1.0 - stickiness) / (num_labels - 1))
    np.fill_diagonal(transition, stickiness)

    examples: list[SequenceExample] = []
    for _ in range(num_sequences):
        length = max(2, int(rng.poisson(mean_length)))
        labels: list[int] = [int(rng.integers(0, num_labels))]
        for _ in range(length - 1):
            labels.append(int(rng.choice(num_labels, p=transition[labels[-1]])))
        token_features: list[tuple[int, ...]] = []
        for label in labels:
            block_start = label * features_per_label
            label_features = rng.choice(features_per_label, size=2, replace=False) + block_start
            noise = num_labels * features_per_label + int(rng.integers(0, noise_features))
            token_features.append(tuple(int(f) for f in label_features) + (noise,))
        examples.append(
            SequenceExample(token_features=tuple(token_features), labels=tuple(labels))
        )
    return SequenceDataset(
        examples=examples, num_features=num_features, num_labels=num_labels, name=name
    )


def make_large_sequences(
    num_sequences: int = 400,
    *,
    mean_length: int = 15,
    num_labels: int = 6,
    seed: int | None = 3,
) -> SequenceDataset:
    """Scaled-down analogue of the DBLP CRF scalability dataset."""
    return make_sequences(
        num_sequences=num_sequences,
        mean_length=mean_length,
        num_labels=num_labels,
        features_per_label=10,
        noise_features=40,
        seed=seed,
        name="dblp_like",
    )


def encode_sequence_for_storage(example: SequenceExample) -> tuple[str, str]:
    """Encode a sequence as the (tokens, labels) TEXT pair used by the CRF task."""
    tokens = "|".join(",".join(str(f) for f in features) for features in example.token_features)
    labels = " ".join(str(label) for label in example.labels)
    return tokens, labels
