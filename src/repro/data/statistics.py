"""Dataset statistics in the style of Table 1 of the paper."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of the dataset-statistics table."""

    name: str
    dimension: str
    num_examples: int
    approximate_bytes: int
    format: str = "dense"

    def size_human(self) -> str:
        size = float(self.approximate_bytes)
        for unit in ("B", "KB", "MB", "GB"):
            if size < 1024 or unit == "GB":
                return f"{size:.1f}{unit}"
            size /= 1024
        return f"{size:.1f}GB"

    def as_row(self) -> tuple[str, str, int, str, str]:
        return (self.name, self.dimension, self.num_examples, self.size_human(), self.format)


def classification_statistics(dataset) -> DatasetStatistics:
    """Statistics for a :class:`~repro.data.synthetic.ClassificationDataset`."""
    return DatasetStatistics(
        name=dataset.name,
        dimension=str(dataset.dimension),
        num_examples=len(dataset),
        approximate_bytes=dataset.approximate_bytes(),
        format="sparse-vector" if dataset.sparse else "dense",
    )


def ratings_statistics(dataset) -> DatasetStatistics:
    """Statistics for a :class:`~repro.data.ratings.RatingsDataset`."""
    return DatasetStatistics(
        name=dataset.name,
        dimension=f"{dataset.num_rows} x {dataset.num_cols}",
        num_examples=len(dataset),
        approximate_bytes=dataset.approximate_bytes(),
        format="sparse-matrix",
    )


def sequence_statistics(dataset) -> DatasetStatistics:
    """Statistics for a :class:`~repro.data.sequences.SequenceDataset`."""
    return DatasetStatistics(
        name=dataset.name,
        dimension=f"{dataset.num_features} features x {dataset.num_labels} labels",
        num_examples=len(dataset),
        approximate_bytes=dataset.approximate_bytes(),
        format="sparse-vector",
    )
