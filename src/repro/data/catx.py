"""The CA-TX dataset (Example 2.1 / 3.1 and Figure 5 of the paper).

``2n`` one-dimensional examples: every feature value is 1, the first ``n``
labels are +1 ("California") and the remaining ``n`` are -1 ("Texas").  The
optimal least-squares solution is ``w = 0``; what matters is how fast IGD gets
there under different visit orders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tasks.base import SupervisedExample


@dataclass(frozen=True)
class CATXDataset:
    """The clustered 1-D dataset, with helpers for the two orderings studied."""

    examples: list[SupervisedExample]
    n: int

    def __len__(self) -> int:
        return len(self.examples)

    def clustered(self) -> list[SupervisedExample]:
        """Ascending-index order: all +1 labels, then all -1 labels (scheme 2)."""
        return list(self.examples)

    def random_order(self, seed: int | None = 0) -> list[SupervisedExample]:
        """A random permutation of the data (scheme 1)."""
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(len(self.examples))
        return [self.examples[i] for i in permutation]

    def labels(self) -> np.ndarray:
        return np.array([example.label for example in self.examples])


def make_catx(n: int = 500) -> CATXDataset:
    """Build the CA-TX dataset with ``2n`` examples (paper uses n = 500)."""
    if n <= 0:
        raise ValueError("n must be positive")
    examples = [SupervisedExample(1.0, 1.0) for _ in range(n)]
    examples += [SupervisedExample(1.0, -1.0) for _ in range(n)]
    return CATXDataset(examples=examples, n=n)
