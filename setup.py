"""Setuptools shim.

The offline environment this reproduction targets ships setuptools without the
``wheel`` package, so PEP-517 editable installs (``pip install -e .``) cannot
build the editable wheel.  This shim lets ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on newer toolchains) install the
package; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
