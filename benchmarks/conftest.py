"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) at the scale given by the ``REPRO_BENCH_SCALE``
environment variable (``small`` by default, ``medium`` / ``full`` for longer,
more faithful runs).  Rendered tables/series are printed so a benchmark run
doubles as a report; EXPERIMENTS.md records paper-vs-measured shapes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale, resolve_scale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return resolve_scale(os.environ.get("REPRO_BENCH_SCALE", "small"))


def report(title: str, text: str) -> None:
    """Print a rendered experiment artefact under a visible banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
