"""Benchmark E1 — Table 1: dataset statistics."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_datasets_table


def test_table1_dataset_statistics(benchmark, scale):
    result = benchmark.pedantic(run_datasets_table, args=(scale,), iterations=1, rounds=1)
    report("Table 1 — dataset statistics", result.render())

    names = {row.name for row in result.rows}
    assert {"forest_like", "dblife_like", "movielens_like", "conll_like"} <= names
    # The scalability datasets must be strictly larger than their benchmark
    # counterparts, as in the paper (Classify300M >> Forest, Matrix5B >> MovieLens).
    assert result.by_name("classify_large").num_examples > result.by_name("forest_like").num_examples
    assert result.by_name("matrix_large").num_examples > result.by_name("movielens_like").num_examples
    assert all(row.approximate_bytes > 0 for row in result.rows)
