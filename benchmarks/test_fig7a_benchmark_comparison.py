"""Benchmark E5 — Figure 7(A): Bismarck vs native analytics tools."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_benchmark_comparison


def test_fig7a_bismarck_vs_native_tools(benchmark, scale):
    result = benchmark.pedantic(run_benchmark_comparison, args=(scale,), iterations=1, rounds=1)
    report("Figure 7A — time to convergence, Bismarck vs native tools", result.render())

    # Bismarck completes every task (reaches the common quality band).
    for row in result.rows:
        assert row.bismarck_seconds is not None, f"Bismarck did not converge on {row.dataset}/{row.task}"

    # On the sparse classification tasks Bismarck is faster than the batch
    # native tools (the paper reports 2-5x there).
    sparse_svm = result.row_for("dblife_like", "SVM")
    assert sparse_svm.speedup is None or sparse_svm.speedup > 1.0
    sparse_lr = result.row_for("dblife_like", "LR")
    assert sparse_lr.speedup is None or sparse_lr.speedup > 1.0

    # On LMF the gap is dramatic (orders of magnitude in the paper): the batch
    # native tool either never reaches the band or is at least 2x slower.
    lmf = result.row_for("movielens_like", "LMF")
    assert lmf.baseline_seconds is None or lmf.speedup > 2.0

    # On the dense tasks Bismarck must at least be competitive (the paper's
    # DBMS A sparse SVM shows the native tool can win narrowly; we allow the
    # same slack on the small-scale dense problems, where Newton/IRLS is at
    # its strongest).
    for dataset, task in (("forest_like", "LR"), ("forest_like", "SVM")):
        row = result.row_for(dataset, task)
        if row.baseline_seconds is not None:
            assert row.bismarck_seconds <= 5.0 * row.baseline_seconds
