"""Dump per-figure benchmark timings to ``BENCH_<n>.json``.

Runs each experiment regeneration function once at the given scale, times it,
and (optionally) times the full tier-1 suite, so every PR leaves a comparable
perf snapshot behind::

    PYTHONPATH=src python benchmarks/run_bench.py --pr 2 --tier1

Compare against a prior snapshot with ``--compare BENCH_<n-1>.json``: the
script prints per-figure deltas and exits non-zero when any shared figure
regressed by more than ``--compare-threshold`` (25% by default, with a small
absolute floor so sub-50ms figures don't trip on scheduler noise).  Timings
are single-shot wall-clock on whatever machine CI / the developer runs them
on — they are for *trajectory*, not absolute claims.

Figures whose result objects expose ``bench_payload()`` (e.g. Figure 9B's
measured-vs-modelled provenance) additionally record that payload under the
snapshot's ``figures`` key.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Regressions smaller than this many seconds never fail a comparison —
#: sub-50ms figures flap by >25% on scheduler noise alone.
ABSOLUTE_REGRESSION_FLOOR_SECONDS = 0.05


def compare_snapshots(
    current: dict, prior: dict, *, threshold: float = 0.25
) -> "tuple[list[str], list[str]]":
    """Per-figure deltas of ``current`` vs ``prior``; returns (lines, regressions).

    A figure regresses when its timing grew by more than ``threshold``
    (relative) *and* by more than the absolute floor.  Figures present in
    only one snapshot are reported but never fail the comparison.
    """
    current_timings = current.get("figure_seconds", {})
    prior_timings = prior.get("figure_seconds", {})
    lines: list[str] = []
    regressions: list[str] = []
    for name in sorted(set(current_timings) | set(prior_timings)):
        now = current_timings.get(name)
        before = prior_timings.get(name)
        if now is None:
            lines.append(f"{name:28s} {'-':>8s}  (removed; was {before:.3f}s)")
            continue
        if before is None:
            lines.append(f"{name:28s} {now:8.3f}s  (new figure)")
            continue
        delta = now - before
        pct = (delta / before * 100.0) if before > 0 else float("inf")
        marker = ""
        if delta > ABSOLUTE_REGRESSION_FLOOR_SECONDS and before > 0 and delta / before > threshold:
            marker = "  <-- REGRESSION"
            regressions.append(name)
        lines.append(f"{name:28s} {now:8.3f}s  vs {before:8.3f}s  ({pct:+6.1f}%){marker}")
    now_total = current.get("figure_total_seconds")
    before_total = prior.get("figure_total_seconds")
    if now_total is not None and before_total is not None:
        lines.append(f"{'total':28s} {now_total:8.3f}s  vs {before_total:8.3f}s")
    return lines, regressions


def _figures(scale: str) -> dict:
    """(name -> zero-argument callable) for every regenerable figure/table."""
    from repro.experiments import (
        run_benchmark_comparison,
        run_catx_experiment,
        run_crash_recovery_experiment,
        run_crf_comparison,
        run_data_ordering_experiment,
        run_datasets_table,
        run_fault_recovery_experiment,
        run_mrs_convergence,
        run_overhead_table,
        run_parallel_convergence,
        run_payload_transport_experiment,
        run_scalability_experiment,
        run_speedup_experiment,
        run_streaming_ingest_experiment,
        run_whole_loop_experiment,
    )

    return {
        "table1_datasets": lambda: run_datasets_table(scale),
        "table2_pure_uda_overhead": lambda: run_overhead_table("pure_uda", scale),
        "table3_shmem_overhead": lambda: run_overhead_table("shared_memory", scale),
        "table4_scalability": lambda: run_scalability_experiment(scale),
        "fig5_catx": lambda: run_catx_experiment(),
        "fig7a_comparison": lambda: run_benchmark_comparison(scale),
        "fig7b_crf": lambda: run_crf_comparison(scale),
        "fig8_ordering": lambda: run_data_ordering_experiment(scale),
        "fig9a_parallel": lambda: run_parallel_convergence(scale),
        "fig9b_speedup": lambda: run_speedup_experiment(scale),
        "whole_loop_parallel": lambda: run_whole_loop_experiment(scale),
        "fault_recovery": lambda: run_fault_recovery_experiment(scale),
        "crash_recovery": lambda: run_crash_recovery_experiment(scale),
        "fig10a_mrs": lambda: run_mrs_convergence(scale),
        "streaming_ingest": lambda: run_streaming_ingest_experiment(scale),
        "payload_transport": lambda: run_payload_transport_experiment(scale),
    }


def time_tier1() -> float:
    """Wall-clock of one full tier-1 run (the acceptance metric)."""
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
        env={**__import__("os").environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    return time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pr", type=int, default=1, help="PR number for BENCH_<n>.json")
    parser.add_argument("--scale", default="small", help="experiment scale (small/medium/full)")
    parser.add_argument("--output", default=None, help="explicit output path")
    parser.add_argument(
        "--tier1", action="store_true", help="also time the full tier-1 suite (slow)"
    )
    parser.add_argument(
        "--only", nargs="*", default=None, help="subset of figure names to run"
    )
    parser.add_argument(
        "--compare", default=None, metavar="BENCH_N.json",
        help="prior snapshot to diff against; exit non-zero on regressions",
    )
    parser.add_argument(
        "--compare-threshold", type=float, default=0.25,
        help="relative slowdown that counts as a regression (default 0.25)",
    )
    args = parser.parse_args()

    figures = _figures(args.scale)
    if args.only:
        unknown = set(args.only) - set(figures)
        if unknown:
            parser.error(f"unknown figures: {sorted(unknown)}; known: {sorted(figures)}")
        figures = {name: figures[name] for name in args.only}

    timings: dict[str, float] = {}
    figure_payloads: dict[str, dict] = {}
    for name, runner in figures.items():
        start = time.perf_counter()
        result = runner()
        timings[name] = round(time.perf_counter() - start, 4)
        print(f"{name:28s} {timings[name]:8.3f}s", flush=True)
        if hasattr(result, "bench_payload"):
            figure_payloads[name] = result.bench_payload()

    payload = {
        "pr": args.pr,
        "scale": args.scale,
        "python": platform.python_version(),
        "figure_seconds": timings,
        "figure_total_seconds": round(sum(timings.values()), 4),
    }
    if figure_payloads:
        payload["figures"] = figure_payloads
    if args.tier1:
        payload["tier1_seconds"] = round(time_tier1(), 2)
        print(f"{'tier1 (pytest -x -q)':28s} {payload['tier1_seconds']:8.2f}s")

    output = Path(args.output) if args.output else REPO_ROOT / f"BENCH_{args.pr}.json"
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    if args.compare:
        prior = json.loads(Path(args.compare).read_text())
        lines, regressions = compare_snapshots(
            payload, prior, threshold=args.compare_threshold
        )
        print(f"\ncomparison vs {args.compare}:")
        for line in lines:
            print(line)
        if regressions:
            print(
                f"\n{len(regressions)} figure(s) regressed by more than "
                f"{args.compare_threshold:.0%}: {', '.join(regressions)}"
            )
            sys.exit(1)
        print("\nno regressions beyond threshold")


if __name__ == "__main__":
    main()
