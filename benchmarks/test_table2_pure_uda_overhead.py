"""Benchmark E2 — Table 2: pure-UDA runtime overhead vs the NULL aggregate."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_overhead_table


def test_table2_pure_uda_overhead(benchmark, scale):
    result = benchmark.pedantic(
        run_overhead_table, args=("pure_uda", scale), kwargs={"repeats": 2},
        iterations=1, rounds=1,
    )
    report("Table 2 — pure-UDA overhead vs NULL aggregate", result.render())

    # Every task costs more than the strawman NULL aggregate...
    assert all(row.task_seconds > row.null_seconds for row in result.rows)
    # ...and the overhead stays bounded (the paper reports <= ~2.5x extra for
    # LMF; our Python transition functions are costlier relative to the scan,
    # so the bound is looser but must not explode).
    assert result.max_overhead_pct() < 1500.0
    # LMF (the compute-heavy task) should be at least as expensive per tuple
    # as the simple LR task on the same engine, as in the paper.
    for engine in ("postgres", "dbms_a", "dbms_b"):
        lmf = result.rows_for(engine=engine, task="LMF")[0]
        lr = [r for r in result.rows_for(engine=engine, task="LR") if r.dataset == "forest_like"][0]
        assert lmf.task_seconds > lr.null_seconds
