"""Benchmark E7 — Table 4: scalability to the large datasets."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_scalability_experiment


def test_table4_scalability(benchmark, scale):
    result = benchmark.pedantic(run_scalability_experiment, args=(scale,), iterations=1, rounds=1)
    report("Table 4 — scalability to the large datasets", result.render())

    # Bismarck completes every task within the wall-clock budget.
    for task in ("LR", "SVM", "LMF", "CRF"):
        assert result.verdict(task, "bismarck")

    # The batch native/in-memory baselines fail on the complex tasks within
    # the same budget — the check/X pattern of Table 4.
    assert not result.verdict("LMF", "native_baseline")
    assert not result.verdict("CRF", "in_memory_baseline")
