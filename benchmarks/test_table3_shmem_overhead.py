"""Benchmark E3 — Table 3: shared-memory UDA overhead vs the NULL aggregate."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_overhead_table


def test_table3_shared_memory_overhead(benchmark, scale):
    result = benchmark.pedantic(
        run_overhead_table, args=("shared_memory", scale), kwargs={"repeats": 2},
        iterations=1, rounds=1,
    )
    report("Table 3 — shared-memory UDA overhead vs NULL aggregate", result.render())

    assert all(row.task_seconds > 0 for row in result.rows)
    assert result.max_overhead_pct() < 1500.0


def test_shared_memory_beats_pure_uda_on_dbms_a(benchmark, scale):
    """The paper's motivation for the shared-memory UDA: on DBMS A, whose pure
    UDA pays heavy model-passing costs, the shared-memory variant is several
    times faster."""

    def run_both():
        return (
            run_overhead_table("pure_uda", scale, engines=("dbms_a",), repeats=2),
            run_overhead_table("shared_memory", scale, engines=("dbms_a",), repeats=2),
        )

    pure, shm = benchmark.pedantic(run_both, iterations=1, rounds=1)
    report("DBMS A: pure UDA vs shared memory", pure.render() + "\n\n" + shm.render())
    for dataset, task in (("forest_like", "LR"), ("forest_like", "SVM"), ("movielens_like", "LMF")):
        pure_row = [r for r in pure.rows if r.dataset == dataset and r.task == task][0]
        shm_row = [r for r in shm.rows if r.dataset == dataset and r.task == task][0]
        assert shm_row.task_seconds < pure_row.task_seconds
