"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's tables/figures and probe the knobs of the
reproduction itself:

* ordering ablation — how much of ShuffleAlways' per-epoch benefit does
  ShuffleOnce retain (vs not shuffling at all)?
* merge-strategy ablation — step-weighted model averaging vs naive unweighted
  averaging for the pure-UDA merge;
* staleness ablation — how sensitive the NoLock scheme is to the number of
  updates applied against one stale snapshot;
* batch-growth ablation — epoch-adaptive mini-batch growth (a BatchSchedule)
  against constant batches and the full-batch GD baseline.
"""

from __future__ import annotations

from conftest import report

from repro.baselines import train_batch_gradient_descent
from repro.core import (
    BatchSchedule,
    IGDConfig,
    Model,
    SharedMemoryParallelism,
    run_shared_memory_epoch,
    train,
    train_in_memory,
)
from repro.data import load_classification_table, make_sparse_classification
from repro.db import Database
from repro.experiments import render_table
from repro.tasks import LogisticRegressionTask


def _sparse_workload(scale):
    dataset = make_sparse_classification(
        scale.sparse_examples,
        scale.sparse_dimension,
        nonzeros_per_example=scale.sparse_nonzeros,
        seed=13,
    ).clustered_by_label()
    return dataset


def test_ablation_ordering_epochs(benchmark, scale):
    """ShuffleOnce retains nearly all of ShuffleAlways' per-epoch benefit."""
    dataset = _sparse_workload(scale)
    task = LogisticRegressionTask(dataset.dimension)
    epochs = max(8, scale.max_epochs)
    rows = []
    finals = {}

    def run_all():
        for policy in ("shuffle_always", "shuffle_once", "clustered"):
            database = Database("postgres", seed=0)
            load_classification_table(database, "docs", dataset.examples, sparse=True)
            result = train(
                task, database, "docs",
                config=IGDConfig(step_size={"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9},
                                 max_epochs=epochs, ordering=policy, seed=0),
            )
            finals[policy] = result.final_objective
            rows.append((policy, f"{result.final_objective:.3f}", f"{result.total_seconds:.3f}s"))
        return finals

    benchmark.pedantic(run_all, iterations=1, rounds=1)
    report("Ablation — ordering policies, final objective after equal epochs",
           render_table(["Policy", "Final objective", "Wall time"], rows))

    # Shuffle-once ends within 10% of shuffle-always; clustered is worse than both.
    assert finals["shuffle_once"] <= finals["shuffle_always"] * 1.10
    assert finals["clustered"] >= finals["shuffle_once"]


def test_ablation_merge_strategy(benchmark, scale):
    """Step-weighted averaging (the merge Bismarck uses) vs unweighted averaging."""
    dataset = _sparse_workload(scale)
    task = LogisticRegressionTask(dataset.dimension)
    examples = dataset.examples
    # Build two deliberately unbalanced partitions (25% / 75%).
    split = len(examples) // 4
    partitions = [examples[:split], examples[split:]]

    def run_merge_comparison():
        partial_models = []
        for partition in partitions:
            result = train_in_memory(task, partition, epochs=3, step_size=0.05, seed=0)
            partial_models.append((result.model, len(partition) * 3))
        weighted = Model.average(
            [model for model, _ in partial_models], weights=[steps for _, steps in partial_models]
        )
        unweighted = Model.average([model for model, _ in partial_models])
        return (
            task.total_loss(weighted, examples),
            task.total_loss(unweighted, examples),
        )

    weighted_loss, unweighted_loss = benchmark.pedantic(run_merge_comparison, iterations=1, rounds=1)
    report("Ablation — merge strategy",
           render_table(["Merge", "Objective"],
                        [("step-weighted", f"{weighted_loss:.3f}"),
                         ("unweighted", f"{unweighted_loss:.3f}")]))
    # Weighting by gradient steps never hurts when partitions are unbalanced.
    assert weighted_loss <= unweighted_loss * 1.05


def test_ablation_nolock_staleness(benchmark, scale):
    """NoLock convergence degrades gracefully as snapshot staleness grows."""
    dataset = _sparse_workload(scale)
    task = LogisticRegressionTask(dataset.dimension)
    examples = dataset.examples
    losses = {}

    def run_staleness_sweep():
        for staleness in (1, 4, 16, 64):
            model = task.initial_model()
            run_shared_memory_epoch(
                examples, task, model, 0.05,
                spec=SharedMemoryParallelism(scheme="nolock", workers=8, staleness=staleness),
            )
            losses[staleness] = task.total_loss(model, examples)
        return losses

    benchmark.pedantic(run_staleness_sweep, iterations=1, rounds=1)
    report("Ablation — NoLock staleness sensitivity",
           render_table(["Staleness", "Objective after 1 epoch"],
                        [(k, f"{v:.3f}") for k, v in losses.items()]))

    baseline = losses[1]
    # Moderate staleness barely hurts (the Hogwild observation)...
    assert losses[4] <= baseline * 1.15
    assert losses[16] <= baseline * 1.30
    # ...and even extreme staleness still converges (no divergence).
    initial = task.total_loss(task.initial_model(), examples)
    assert losses[64] < initial


def test_ablation_batch_growth(benchmark, scale):
    """Epoch-adaptive batch growth vs constant batches vs full-batch GD.

    The growth schedule starts at the exact-IGD regime (one step per tuple,
    fast early progress) and grows the mini-batch geometrically, ending in
    the variance-reduced batch-GD regime — it should keep (almost all of)
    IGD's head start while a large constant batch gives it up, and it should
    beat full-batch GD at an equal number of passes over the data.
    """
    dataset = _sparse_workload(scale)
    task = LogisticRegressionTask(dataset.dimension)
    epochs = max(8, scale.max_epochs)
    step_size = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9}
    schedules = {
        "exact_igd": 1,
        "constant_32": 32,
        "growth_1to32": BatchSchedule(initial=1, growth=2.0, cap=32),
    }
    finals = {}
    rows = []

    def run_all():
        for name, batch_size in schedules.items():
            database = Database("postgres", seed=0)
            load_classification_table(database, "docs", dataset.examples, sparse=True)
            result = train(
                task, database, "docs",
                config=IGDConfig(step_size=step_size, max_epochs=epochs,
                                 ordering="shuffle_once", seed=0, batch_size=batch_size),
            )
            finals[name] = result.final_objective
            rows.append((name, f"{result.final_objective:.3f}",
                         f"{result.total_seconds:.3f}s"))
        # The batch-GD baseline gets one full-gradient step per epoch —
        # the same number of passes over the data as the IGD runs.
        baseline = train_batch_gradient_descent(
            task, dataset.examples, step_size=0.05, iterations=epochs,
        )
        finals["batch_gd"] = baseline.final_objective
        rows.append(("batch_gd", f"{baseline.final_objective:.3f}",
                     f"{baseline.total_seconds:.3f}s"))
        return finals

    benchmark.pedantic(run_all, iterations=1, rounds=1)
    report("Ablation — epoch-adaptive batch growth vs batch GD",
           render_table(["Schedule", "Final objective", "Wall time"], rows))

    # Growth interpolates: worse than exact IGD (it trades steps for
    # variance reduction) but clearly ahead of jumping straight to the large
    # constant batch...
    assert finals["exact_igd"] <= finals["growth_1to32"]
    assert finals["growth_1to32"] <= finals["constant_32"] * 0.75
    # ...and far ahead of full-batch GD at an equal number of passes.
    assert finals["growth_1to32"] < finals["batch_gd"]
