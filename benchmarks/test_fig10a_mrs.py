"""Benchmark E11 — Figure 10(A): MRS vs Subsampling vs Clustered."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_mrs_convergence


def test_fig10a_mrs_convergence(benchmark, scale):
    result = benchmark.pedantic(
        run_mrs_convergence, args=(scale,), kwargs={"buffer_fraction": 0.1}, iterations=1, rounds=1
    )
    report("Figure 10A — MRS vs Subsampling vs Clustered (10% buffer)", result.render())

    # MRS ends at a lower objective than both Subsampling and Clustered
    # (the paper reports ~20% lower), using a buffer of only ~10% of the data.
    mrs = result.final_objective("mrs")
    assert mrs < result.final_objective("subsampling")
    assert mrs < result.final_objective("clustered")
    assert result.buffer_size <= 0.15 * result.dataset_size

    # All three schemes make progress from their starting point.
    for scheme, trace in result.traces.items():
        assert trace[-1] < trace[0], f"{scheme} did not improve"
