"""Benchmark E12 — Figure 10(B): sensitivity to the reservoir buffer size."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_buffer_size_experiment


def test_fig10b_buffer_size_sensitivity(benchmark, scale):
    result = benchmark.pedantic(
        run_buffer_size_experiment,
        args=(scale,),
        kwargs={"buffer_fractions": (0.05, 0.1, 0.2)},
        iterations=1,
        rounds=1,
    )
    report("Figure 10B — time to reach 2x the optimal objective", result.render())

    buffer_sizes = sorted({row.buffer_size for row in result.rows})
    assert len(buffer_sizes) == 3

    for buffer_size in buffer_sizes:
        mrs = result.row_for(buffer_size, "mrs")
        subsampling = result.row_for(buffer_size, "subsampling")
        # MRS reaches 2x the optimal objective at every buffer size...
        assert mrs.seconds_to_target is not None
        # ...and is never slower than plain subsampling (which may not reach
        # the target at all with small buffers, as its reservoir discards most
        # of the data — the paper's motivation for MRS).
        if subsampling.seconds_to_target is not None:
            assert mrs.epochs_to_target <= subsampling.epochs_to_target
        else:
            assert subsampling.seconds_to_target is None

    # Larger buffers help MRS (non-increasing epochs to target).
    mrs_epochs = [result.row_for(size, "mrs").epochs_to_target for size in buffer_sizes]
    assert mrs_epochs[0] >= mrs_epochs[-1]
