"""Benchmark E10 — Figure 9(B): per-epoch speed-up vs number of workers.

With two or more cores the experiment reports *measured* multi-process
wall-clock speed-ups (process backend); on a single core it falls back to the
labelled analytic model.  The assertions follow the provenance: the modelled
curves are deterministic arithmetic and are pinned tightly; measured curves
are real wall-clock on shared CI hardware and are pinned on the shapes that
survive noise (NoLock scales, Lock does not).
"""

from __future__ import annotations

from conftest import report

from repro.experiments import run_speedup_experiment


def test_fig9b_speedup_vs_workers(benchmark, scale):
    result = benchmark.pedantic(
        run_speedup_experiment, args=(scale,), kwargs={"max_workers": 8}, iterations=1, rounds=1
    )
    report("Figure 9B — speed-up of the per-epoch gradient computation", result.render())

    if result.mode == "modeled":
        # Deterministic analytic fallback (single-core host): NoLock achieves
        # the highest (near-linear) speed-up, AIG is close behind, the pure
        # UDA is sub-linear because of model passing/merging, and Lock gets
        # essentially no speed-up — exactly Figure 9(B)'s ordering.
        assert result.speedup("nolock", 8) > 6.5
        assert result.speedup("aig", 8) > 5.0
        assert result.speedup("nolock", 8) >= result.speedup("aig", 8)
        assert result.speedup("aig", 8) > result.speedup("pure_uda", 8)
        assert 1.0 < result.speedup("pure_uda", 8) < 8.0
        assert result.speedup("lock", 8) <= 1.1

        # Speed-ups are monotone in the number of workers for the scalable schemes.
        for scheme in ("nolock", "aig", "pure_uda"):
            series = result.speedups[scheme]
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
    else:
        # Measured wall-clock on real worker processes: pin the robust shape.
        # The Lock scheme serialises the whole gradient cycle, so it can
        # never meaningfully beat serial; the racing schemes must beat Lock
        # at the top worker count, and NoLock must show real scaling beyond
        # one worker whenever the host has spare cores.
        assert result.mode == "measured"
        top = result.worker_counts[-1]
        assert result.speedup("lock", top) <= 1.3
        assert result.speedup("nolock", top) > result.speedup("lock", top)
        if result.cores >= 2 and top >= 2:
            assert result.speedup("nolock", top) > 1.0
            assert result.speedup("pure_uda", top) > 1.0
        for scheme in ("nolock", "aig", "pure_uda", "lock"):
            assert all(value > 0 for value in result.speedups[scheme])
