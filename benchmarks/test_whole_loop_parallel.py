"""Benchmark — whole-loop parallelisation vs PR-4's gradient-only shape.

The pass-plan layer routes the per-epoch loss pass through the same worker
pool as the gradient pass (``parallel_evaluation=True``).  On the CRF
workload the forward-algorithm loss costs about as much as the gradient
epoch, so once the gradient runs on worker processes the serial loss pass is
the Amdahl bottleneck — exactly what the whole-loop run removes.  On a
single-core host the run still records honestly (the ``cores`` field labels
it) but no genuine win can appear, so the speed-up assertion is gated on the
core count like the measured Figure 9B assertions.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import run_whole_loop_experiment


def test_whole_loop_beats_gradient_only(benchmark, scale):
    result = benchmark.pedantic(
        run_whole_loop_experiment, args=(scale,), kwargs={"epochs": 4},
        iterations=1, rounds=1,
    )
    report("Whole-loop parallelisation — gradient + loss on the worker pool",
           result.render())

    assert set(result.total_seconds) == {"serial", "gradient_only", "whole_loop"}
    for mode, seconds in result.steady_seconds.items():
        assert seconds > 0, mode
    # Parallelising the loss pass never changes what is learned: all three
    # runs train real models whose final objectives sit in one band.
    objectives = result.final_objectives
    assert max(objectives.values()) <= min(objectives.values()) * 1.5
    # The re-evaluation pass (process-backed for the parallel modes) agrees
    # with the driver's own final loss pass to float noise.
    for mode in objectives:
        assert abs(result.final_eval[mode] - objectives[mode]) <= 1e-6 * max(
            1.0, abs(objectives[mode])
        )

    if result.cores >= 2:
        # The acceptance bar: with real cores, the whole-loop run is
        # measurably faster end-to-end than the gradient-only-parallel run.
        assert result.speedup_vs_gradient_only() > 1.05
