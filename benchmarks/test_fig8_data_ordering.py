"""Benchmark E8 — Figure 8: impact of data ordering on sparse LR."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_data_ordering_experiment


def test_fig8_data_ordering(benchmark, scale):
    result = benchmark.pedantic(
        run_data_ordering_experiment, args=(scale,), kwargs={"max_epochs": max(scale.max_epochs, 16)},
        iterations=1, rounds=1,
    )
    report("Figure 8 — ShuffleAlways / ShuffleOnce / Clustered on sparse LR", result.render())

    shuffle_always = result.runs["shuffle_always"]
    shuffle_once = result.runs["shuffle_once"]
    clustered = result.runs["clustered"]

    # (A) Epoch view: ShuffleAlways needs no more epochs than ShuffleOnce, and
    # Clustered is clearly the worst — it needs more epochs than either or
    # never reaches the target within the budget.
    assert shuffle_always.epochs_to_target is not None
    assert shuffle_once.epochs_to_target is not None
    assert shuffle_always.epochs_to_target <= shuffle_once.epochs_to_target + 2
    if clustered.epochs_to_target is not None:
        assert clustered.epochs_to_target >= shuffle_once.epochs_to_target

    # (B) Time view: ShuffleOnce reaches the target no slower than
    # ShuffleAlways (it avoids the per-epoch shuffle cost).  A small absolute
    # slack keeps the check robust to scheduler jitter on sub-second runs.
    assert shuffle_once.seconds_to_target is not None
    assert shuffle_always.seconds_to_target is not None
    assert shuffle_once.seconds_to_target <= shuffle_always.seconds_to_target * 1.25 + 0.05

    # The shuffle cost is paid once vs every epoch.
    assert shuffle_always.shuffle_seconds > shuffle_once.shuffle_seconds
    assert clustered.shuffle_seconds == 0.0
