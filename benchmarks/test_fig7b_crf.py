"""Benchmark E6 — Figure 7(B): CRF convergence, Bismarck vs batch tools."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_crf_comparison


def test_fig7b_crf_convergence(benchmark, scale):
    result = benchmark.pedantic(run_crf_comparison, args=(scale,), iterations=1, rounds=1)
    report("Figure 7B — CRF objective vs time", result.render())

    # Bismarck reaches at least the quality of the batch (CRF++/Mallet-style)
    # trainer by the end of its run...
    assert result.bismarck_objectives[-1] <= result.baseline_objectives[-1] * 1.05
    # ...and having spent only half the baseline's wall-clock budget it is
    # already at or below where the baseline finishes (the "similar or faster
    # convergence" claim of the paper).
    assert result.bismarck_objective_at(0.5) <= result.baseline_objectives[-1] * 1.25
    # The trained tagger is actually good (the objective is meaningful).
    assert result.bismarck_final_accuracy > 0.8
