"""Benchmark E9 — Figure 9(A): convergence of the parallel IGD schemes."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_parallel_convergence


def test_fig9a_parallel_convergence(benchmark, scale):
    result = benchmark.pedantic(
        run_parallel_convergence, args=(scale,), kwargs={"workers": 8}, iterations=1, rounds=1
    )
    report("Figure 9A — parallel IGD convergence (8 workers)", result.render())

    # Model averaging (pure UDA) converges worse per epoch than the shared-
    # memory schemes — the paper's reason for choosing the shared-memory UDA.
    assert result.final_objective("pure_uda") > result.final_objective("lock")
    assert result.final_objective("pure_uda") > result.final_objective("nolock")

    # Lock, AIG and NoLock have similar convergence (within 25% of each other),
    # matching the Hogwild result the paper adopts.
    lock = result.final_objective("lock")
    assert abs(result.final_objective("aig") - lock) / lock < 0.25
    assert abs(result.final_objective("nolock") - lock) / lock < 0.25

    # Every scheme still makes progress over its starting objective.
    for scheme, trace in result.traces.items():
        assert trace[-1] < trace[0], f"{scheme} did not improve"
