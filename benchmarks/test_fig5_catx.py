"""Benchmark E4 — Figure 5: the 1-D CA-TX ordering example."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_catx_experiment


def test_fig5_catx_random_vs_clustered(benchmark):
    result = benchmark.pedantic(
        run_catx_experiment, kwargs={"n": 500, "max_epochs": 60}, iterations=1, rounds=1
    )
    report("Figure 5 — CA-TX: random vs clustered ordering", result.render())

    # Both orderings converge to w = 0 eventually...
    assert result.random_epochs_to_converge is not None
    assert result.clustered_epochs_to_converge is not None
    # ...but the clustered ordering needs several times more epochs (the paper
    # reports 18 vs 48 for its step-size rule; the factor, not the absolute
    # counts, is the claim under reproduction).
    assert result.clustered_epochs_to_converge >= 2 * result.random_epochs_to_converge
    # After the first epoch the random ordering hovers near the optimum, while
    # the clustered ordering is still far away (the within-epoch pull towards
    # the last-seen class keeps dragging it off) — the distance gap is what
    # Figure 5 visualises.  (The full +1/-1 oscillation appears under a
    # constant step size; see the closed-form Appendix-C tests.)
    steps_per_epoch = 2 * 500
    random_tail = result.random_trace[steps_per_epoch:5 * steps_per_epoch]
    clustered_tail = result.clustered_trace[steps_per_epoch:5 * steps_per_epoch]
    random_worst = max(abs(value) for value in random_tail)
    clustered_worst = max(abs(value) for value in clustered_tail)
    assert clustered_worst > 3.0 * random_worst
